// FM 2.x correctness must be platform-independent: the same protocol runs
// on the Sparc-era and PPro-era presets and on deliberately odd platform
// parameters (tiny MTU, tiny rings, minimal credits). Parameterized sweep.
#include <gtest/gtest.h>

#include <memory>

#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"

namespace fmx::fm2 {
namespace {

using sim::Engine;
using sim::Task;

struct PlatformCase {
  const char* name;
  net::ClusterParams (*make)();
};

net::ClusterParams odd_platform() {
  auto p = net::ppro_fm2_cluster(2);
  p.nic.mtu_payload = 48;  // barely above the 16-byte header
  p.nic.host_ring_slots = 6;
  p.nic.sram_rx_slots = 2;
  p.nic.tx_queue_slots = 2;
  p.nic.sram_tx_slots = 1;
  return p;
}

net::ClusterParams sparc_platform() { return net::sparc_fm1_cluster(2); }
net::ClusterParams ppro_platform() { return net::ppro_fm2_cluster(2); }
net::ClusterParams reliable_lossy_platform() {
  auto p = net::ppro_fm2_cluster(2);
  p.fabric.bit_error_rate = 3e-5;
  p.nic.reliable_link = true;
  return p;
}

class Fm2PlatformSweep : public ::testing::TestWithParam<PlatformCase> {};

TEST_P(Fm2PlatformSweep, MixedTrafficIntegrity) {
  Engine eng;
  net::Cluster cl(eng, GetParam().make());
  Endpoint tx(cl, 0), rx(cl, 1);
  constexpr int kMsgs = 25;
  int seen = 0;
  rx.register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    Bytes buf(s.msg_bytes());
    if (!buf.empty()) co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(seen, 0, ByteSpan{buf}), -1)
        << "msg " << seen << " on " << ::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name();
    ++seen;
  });
  eng.spawn([](Endpoint& ep) -> Task<void> {
    sim::Rng rng(5);
    for (std::size_t i = 0; i < kMsgs; ++i) {
      Bytes m = pattern_bytes(i, rng.uniform(0, 3000));
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](Endpoint& ep, int& n) -> Task<void> {
    co_await ep.poll_until([&] { return n == kMsgs; });
  }(rx, seen));
  eng.run();
  EXPECT_EQ(seen, kMsgs);
  EXPECT_EQ(eng.pending_roots(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, Fm2PlatformSweep,
    ::testing::Values(PlatformCase{"sparc", sparc_platform},
                      PlatformCase{"ppro", ppro_platform},
                      PlatformCase{"odd", odd_platform},
                      PlatformCase{"lossy_reliable",
                                   reliable_lossy_platform}),
    [](const auto& pinfo) { return pinfo.param.name; });

TEST(Fm2Limits, MessageBeyond16BitPacketIndexThrows) {
  Engine eng;
  auto p = net::ppro_fm2_cluster(2);
  p.nic.mtu_payload = 32;  // seg = 16 B -> 65535 packets ~ 1 MB limit
  net::Cluster cl(eng, p);
  Endpoint tx(cl, 0), rx(cl, 1);
  eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes huge(16u * 65536u);
    EXPECT_THROW((void)co_await ep.begin_message(1, huge.size(), 0),
                 std::length_error);
  }(tx));
  eng.run();
}

TEST(Fm1Limits, MessageBeyond16BitPacketIndexThrows) {
  Engine eng;
  auto p = net::sparc_fm1_cluster(2);  // seg = 112 B
  net::Cluster cl(eng, p);
  ::fmx::fm1::Endpoint tx(cl, 0), rx(cl, 1);
  eng.spawn([](::fmx::fm1::Endpoint& ep) -> Task<void> {
    Bytes huge(112u * 65536u);
    EXPECT_THROW(co_await ep.send(1, 0, ByteSpan{huge}), std::length_error);
  }(tx));
  eng.run();
}

TEST(Fm2Limits, ExtractBudgetExactPacketBoundary) {
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));
  Endpoint tx(cl, 0), rx(cl, 1);
  int seen = 0;
  rx.register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    co_await s.skip(s.remaining());
    ++seen;
  });
  // Messages exactly one packet-payload long (seg bytes).
  std::size_t seg = rx.max_payload_per_packet();
  eng.spawn([](Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < 4; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, seg));
  eng.spawn([](Engine& e, Endpoint& ep, std::size_t sz,
               int& n) -> Task<void> {
    co_await e.delay(sim::ms(1));
    // A budget of exactly one packet's data processes exactly one message.
    EXPECT_EQ(co_await ep.extract(sz), 1);
    EXPECT_EQ(n, 1);
    co_await ep.poll_until([&] { return n == 4; });
  }(eng, rx, seg, seen));
  eng.run();
  EXPECT_EQ(seen, 4);
}

}  // namespace
}  // namespace fmx::fm2
