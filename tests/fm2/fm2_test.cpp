#include "fm2/fm2.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tests/common/sim_fixture.hpp"

namespace fmx::fm2 {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(net::ClusterParams p, Config cfg = {}) : cluster(eng, p) {
    for (int i = 0; i < p.n_hosts; ++i) {
      eps.push_back(std::make_unique<Endpoint>(cluster, i, cfg));
    }
  }
  Endpoint& ep(int i) { return *eps[i]; }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

TEST(Fm2, BasicSendReceive) {
  World w(net::ppro_fm2_cluster(2));
  Bytes msg = pattern_bytes(1, 100);
  bool got = false;
  w.ep(1).register_handler(7, [&](RecvStream& s, int src) -> HandlerTask {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(s.msg_bytes(), 100u);
    Bytes buf(100);
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(1, 0, ByteSpan{buf}), -1);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep, ByteSpan m) -> Task<void> {
    co_await ep.send(1, 7, m);
  }(w.ep(0), ByteSpan{msg}));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_TRUE(got);
}

TEST(Fm2, PaperHandlerExample) {
  // The exact pattern from §4.1: read a header piece, then steer the
  // payload by what the header says.
  struct MsgHeader {
    std::uint32_t length;
    std::uint32_t littlemsg;
  };
  World w(net::ppro_fm2_cluster(2));
  Bytes little(64), big(3000);
  bool done = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    MsgHeader h;
    co_await s.receive(&h, sizeof(h));
    if (h.littlemsg) {
      co_await s.receive(little.data(), h.length);
    } else {
      co_await s.receive(big.data(), h.length);
    }
    done = true;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    MsgHeader h{3000, 0};
    Bytes payload = pattern_bytes(9, 3000);
    const ByteSpan pieces[] = {as_bytes_of(h), ByteSpan{payload}};
    co_await ep.send_gather(1, 0, pieces);
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& d) -> Task<void> {
    co_await ep.poll_until([&] { return d; });
  }(w.ep(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(pattern_mismatch(9, 0, ByteSpan{big}.subspan(0, 3000)), -1);
}

TEST(Fm2, GatherScatterPieceSizesNeedNotMatch) {
  World w(net::ppro_fm2_cluster(2));
  Bytes whole = pattern_bytes(3, 777);
  Bytes out(777);
  bool done = false;
  // Send as 3 pieces of 100/377/300; receive as 7 pieces of 111 each.
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    std::size_t off = 0;
    for (int i = 0; i < 7; ++i) {
      co_await s.receive(out.data() + off, 111);
      off += 111;
    }
    EXPECT_EQ(s.remaining(), 0u);
    done = true;
  });
  w.eng.spawn([](Endpoint& ep, ByteSpan m) -> Task<void> {
    SendStream s = co_await ep.begin_message(1, m.size(), 0);
    co_await ep.send_piece(s, m.subspan(0, 100));
    co_await ep.send_piece(s, m.subspan(100, 377));
    co_await ep.send_piece(s, m.subspan(477, 300));
    co_await ep.end_message(s);
  }(w.ep(0), ByteSpan{whole}));
  w.eng.spawn([](Endpoint& ep, bool& d) -> Task<void> {
    co_await ep.poll_until([&] { return d; });
  }(w.ep(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(out, whole);
}

TEST(Fm2, HandlerStartsBeforeMessageComplete) {
  // The stream abstraction pipelines: the handler must observe the header
  // while later packets of the same message are still in flight.
  World w(net::ppro_fm2_cluster(2));
  std::size_t msg_bytes_at_first_receive = 0;
  std::size_t fed_at_first_receive = 0;
  bool done = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    Bytes hdr(16);
    co_await s.receive(MutByteSpan{hdr});
    msg_bytes_at_first_receive = s.msg_bytes();
    fed_at_first_receive = s.available() + 16;
    co_await s.skip(s.remaining());
    done = true;
  });
  constexpr std::size_t kBig = 64 * 1024;
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kBig);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& d) -> Task<void> {
    co_await ep.poll_until([&] { return d; });
  }(w.ep(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(msg_bytes_at_first_receive, kBig);
  // When the handler first ran, most of the message had NOT yet arrived.
  EXPECT_LT(fed_at_first_receive, kBig / 2);
}

TEST(Fm2, InterleavedSendersEachGetTheirOwnHandlerThread) {
  World w(net::ppro_fm2_cluster(3));
  constexpr std::size_t kBig = 32 * 1024;
  int done = 0;
  std::size_t max_active = 0;
  w.ep(2).register_handler(0, [&](RecvStream& s, int src) -> HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(src, 0, ByteSpan{buf}), -1);
    ++done;
  });
  for (int src = 0; src < 2; ++src) {
    w.eng.spawn([](Endpoint& ep, int me) -> Task<void> {
      Bytes m = pattern_bytes(me, kBig);
      co_await ep.send(2, 0, ByteSpan{m});
    }(w.ep(src), src));
  }
  w.eng.spawn([](Endpoint& ep, int& d, std::size_t& act) -> Task<void> {
    while (d < 2) {
      (void)co_await ep.extract();
      act = std::max(act, ep.active_handlers());
      if (d >= 2) break;
      co_await ep.host().compute(sim::us(2));
    }
  }(w.ep(2), done, max_active));
  w.eng.run();
  EXPECT_EQ(done, 2);
  // Both handlers were live at once: transparent handler multithreading.
  EXPECT_EQ(max_active, 2u);
  EXPECT_EQ(w.ep(2).stats().handler_starts, 2u);
}

TEST(Fm2, ReceiverFlowControlLimitsExtraction) {
  World w(net::ppro_fm2_cluster(2));
  constexpr std::size_t kMsg = 16 * 1024;
  std::size_t received = 0;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    received += buf.size();
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kMsg);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, std::size_t& rec) -> Task<void> {
    // Extract in 2 KB portions: the message should take several extracts.
    int extracts = 0;
    while (rec < kMsg) {
      (void)co_await ep.extract(2048);
      ++extracts;
      if (rec >= kMsg) break;
      co_await ep.host().compute(sim::us(5));
    }
    EXPECT_GE(extracts, 6);  // 16 KB at ~2 KB per call
  }(w.ep(1), received));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_EQ(received, kMsg);
}

TEST(Fm2, UnextractedDataWithholdsCreditsAndPacesSender) {
  Config cfg;
  cfg.credits_per_peer = 4;
  World w(net::ppro_fm2_cluster(2), cfg);
  w.ep(1).register_handler(0, [](RecvStream& s, int) -> HandlerTask {
    co_await s.skip(s.remaining());
  });
  int sent = 0;
  w.eng.spawn([](Endpoint& ep, int& s) -> Task<void> {
    for (int i = 0; i < 16; ++i) {
      Bytes m(64);
      co_await ep.send(1, 0, ByteSpan{m});
      ++s;
    }
  }(w.ep(0), sent));
  w.eng.run();
  // Receiver never extracted: sender stalled after its credit allowance.
  EXPECT_EQ(sent, 4);
  EXPECT_EQ(w.eng.pending_roots(), 1);
  w.eng.spawn([](Endpoint& ep, int& s) -> Task<void> {
    co_await ep.poll_until([&] { return s == 16; });
  }(w.ep(1), sent));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_EQ(sent, 16);
}

TEST(Fm2, HandlerEarlyReturnSkipsRestOfMessage) {
  World w(net::ppro_fm2_cluster(2));
  int handled = 0;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    Bytes first(8);
    co_await s.receive(MutByteSpan{first});
    ++handled;
    co_return;  // 4 KB of payload left unread -> FM must discard it
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      Bytes m(4096 + 8);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.poll_until([&] { return ep.stats().msgs_received == 3; });
  }(w.ep(1)));
  w.eng.run();
  // All three messages completed despite early returns.
  EXPECT_EQ(handled, 3);
  EXPECT_EQ(w.ep(1).stats().msgs_received, 3u);
}

TEST(Fm2, ZeroLengthMessage) {
  World w(net::ppro_fm2_cluster(2));
  bool got = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    EXPECT_EQ(s.msg_bytes(), 0u);
    got = true;
    co_return;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.send(1, 0, {});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(Fm2, BackToBackMessagesSameSource) {
  World w(net::ppro_fm2_cluster(2));
  constexpr int kN = 30;
  int seen = 0;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    std::uint32_t id;
    co_await s.receive(&id, 4);
    EXPECT_EQ(id, static_cast<std::uint32_t>(seen));
    Bytes rest(s.remaining());
    co_await s.receive(MutByteSpan{rest});
    EXPECT_EQ(pattern_mismatch(id, 4, ByteSpan{rest}), -1);
    ++seen;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    for (std::uint32_t i = 0; i < kN; ++i) {
      Bytes m = pattern_bytes(i, 700);
      std::memcpy(m.data(), &i, 4);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, int& n) -> Task<void> {
    co_await ep.poll_until([&] { return n == kN; });
  }(w.ep(1), seen));
  w.eng.run();
  EXPECT_EQ(seen, kN);
}

TEST(Fm2, SendPieceOverflowThrows) {
  World w(net::ppro_fm2_cluster(2));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    SendStream s = co_await ep.begin_message(1, 10, 0);
    Bytes big(11);
    EXPECT_THROW(co_await ep.send_piece(s, ByteSpan{big}), std::logic_error);
  }(w.ep(0)));
  w.eng.run();
}

TEST(Fm2, EndBeforeFullComposeThrows) {
  World w(net::ppro_fm2_cluster(2));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    SendStream s = co_await ep.begin_message(1, 10, 0);
    Bytes five(5);
    co_await ep.send_piece(s, ByteSpan{five});
    EXPECT_THROW(co_await ep.end_message(s), std::logic_error);
  }(w.ep(0)));
  w.eng.run();
}

TEST(Fm2, ReceiveBeyondMessageEndThrows) {
  World w(net::ppro_fm2_cluster(2));
  bool checked = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    Bytes buf(100);
    EXPECT_THROW(co_await s.receive(MutByteSpan{buf}), std::logic_error);
    checked = true;
    co_return;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(10);  // handler will ask for 100
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& c) -> Task<void> {
    co_await ep.poll_until([&] { return c; });
  }(w.ep(1), checked));
  w.eng.run();
  EXPECT_TRUE(checked);
}

TEST(Fm2, HandlerExceptionPropagatesToExtract) {
  World w(net::ppro_fm2_cluster(2));
  w.ep(1).register_handler(0, [](RecvStream&, int) -> HandlerTask {
    throw std::runtime_error("handler blew up");
    co_return;  // unreachable; makes this a coroutine
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(8);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    for (;;) {
      (void)co_await ep.extract();
      co_await ep.host().compute(sim::us(1));
    }
  }(w.ep(1)));
  EXPECT_THROW(w.eng.run(), std::runtime_error);
}

TEST(Fm2, WholeMessageAblationDelaysHandlerStart) {
  Config cfg;
  cfg.whole_message_handlers = true;
  World w(net::ppro_fm2_cluster(2), cfg);
  std::size_t available_at_start = 0;
  bool done = false;
  constexpr std::size_t kBig = 32 * 1024;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    available_at_start = s.available();
    co_await s.skip(s.remaining());
    done = true;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kBig);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& d) -> Task<void> {
    co_await ep.poll_until([&] { return d; });
  }(w.ep(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  // In whole-message mode the handler saw the entire message buffered.
  EXPECT_EQ(available_at_start, kBig);
}

TEST(Fm2, LongMessageDoesNotBlockOtherSenders) {
  // §4.1: "one long message from one sender does not block other senders."
  // A small message from node 1 must be delivered while node 0's bulk
  // message to the same receiver is still in flight.
  auto params = net::ppro_fm2_cluster(3);
  params.nic.host_ring_slots = 512;
  Config cfg;
  cfg.credits_per_peer = 192;
  World w(params, cfg);
  constexpr std::size_t kBulk = 96 * 1024;
  sim::Ps bulk_done_at = 0, small_done_at = 0;
  Bytes sink(kBulk);
  w.ep(2).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    bulk_done_at = w.eng.now();
  });
  w.ep(2).register_handler(1, [&](RecvStream& s, int) -> HandlerTask {
    co_await s.skip(s.remaining());
    small_done_at = w.eng.now();
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kBulk);
    co_await ep.send(2, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Engine& e, Endpoint& ep) -> Task<void> {
    co_await e.delay(sim::us(200));  // bulk transfer well underway
    Bytes m(32);
    co_await ep.send(2, 1, ByteSpan{m});
  }(w.eng, w.ep(1)));
  w.eng.spawn([](Endpoint& ep, sim::Ps& b, sim::Ps& s) -> Task<void> {
    co_await ep.poll_until([&] { return b != 0 && s != 0; });
  }(w.ep(2), bulk_done_at, small_done_at));
  w.eng.run();
  ASSERT_NE(bulk_done_at, 0u);
  ASSERT_NE(small_done_at, 0u);
  // The small message finished well before the bulk one.
  EXPECT_LT(small_done_at, bulk_done_at);
}

TEST(Fm2, WholeMessageDeliveryDeadlocksBeyondCreditWindow) {
  // The structural argument for layer interleaving: with whole-message
  // delivery, nothing is consumed until the full message arrived, but with
  // consumption-based credits nothing more can arrive once the window is
  // exhausted. Messages larger than the window deadlock; interleaved
  // handlers dissolve the cycle.
  Config whole;
  whole.whole_message_handlers = true;
  whole.credits_per_peer = 8;  // window: 8 packets ~ 8 KB
  World w(net::ppro_fm2_cluster(2), whole);
  bool got = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    co_await s.skip(s.remaining());
    got = true;
  });
  constexpr std::size_t kBig = 64 * 1024;  // far beyond the window
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kBig);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(w.eng.pending_roots(), 2);  // both sides wedged

  // Identical setup with interleaving on: completes.
  Config inter;
  inter.credits_per_peer = 8;
  World w2(net::ppro_fm2_cluster(2), inter);
  bool got2 = false;
  w2.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    co_await s.skip(s.remaining());
    got2 = true;
  });
  w2.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(kBig);
    co_await ep.send(1, 0, ByteSpan{m});
  }(w2.ep(0)));
  w2.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w2.ep(1), got2));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w2.eng));
  EXPECT_TRUE(got2);
}

TEST(Fm2, UnregisteredHandlerDropsMessage) {
  World w(net::ppro_fm2_cluster(2));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(500);
    co_await ep.send(1, 42, ByteSpan{m});  // no handler 42 on the receiver
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.poll_until([&] { return ep.stats().msgs_received == 1; });
  }(w.ep(1)));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_EQ(w.ep(1).stats().msgs_received, 1u);
  EXPECT_EQ(w.ep(1).stats().handler_starts, 0u);
}

class Fm2PropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(Fm2PropertyTest, RandomGatherScatterIntegrity) {
  auto [max_size, seed] = GetParam();
  World w(net::ppro_fm2_cluster(2));
  sim::Rng rng(seed);
  constexpr int kMsgs = 25;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < kMsgs; ++i) sizes.push_back(rng.uniform(1, max_size));
  int seen = 0;
  // Receive each message in randomly-sized chunks.
  auto rng2 = std::make_shared<sim::Rng>(seed + 1);
  w.ep(1).register_handler(0, [&, rng2](RecvStream& s, int) -> HandlerTask {
    Bytes buf(s.msg_bytes());
    std::size_t off = 0;
    while (off < buf.size()) {
      std::size_t n = std::min<std::size_t>(
          rng2->uniform(1, 512), buf.size() - off);
      co_await s.receive(buf.data() + off, n);
      off += n;
    }
    EXPECT_EQ(pattern_mismatch(2000 + seen, 0, ByteSpan{buf}), -1);
    ++seen;
  });
  w.eng.spawn([](Endpoint& ep, const std::vector<std::size_t>& sz,
                 std::uint64_t sd) -> Task<void> {
    sim::Rng r(sd + 2);
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes m = pattern_bytes(2000 + i, sz[i]);
      // Send in randomly-sized pieces.
      SendStream s = co_await ep.begin_message(1, m.size(), 0);
      std::size_t off = 0;
      while (off < m.size()) {
        std::size_t n =
            std::min<std::size_t>(r.uniform(1, 700), m.size() - off);
        co_await ep.send_piece(s, ByteSpan{m}.subspan(off, n));
        off += n;
      }
      co_await ep.end_message(s);
    }
  }(w.ep(0), sizes, static_cast<std::uint64_t>(seed)));
  w.eng.spawn([](Endpoint& ep, int& n) -> Task<void> {
    co_await ep.poll_until([&] { return n == kMsgs; });
  }(w.ep(1), seen));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_EQ(seen, kMsgs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fm2PropertyTest,
    ::testing::Combine(::testing::Values(64, 2000, 20000),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace fmx::fm2
