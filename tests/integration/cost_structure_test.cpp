// Structural regression net for the cost story every figure depends on.
// These don't check absolute numbers — they check WHERE time and copies go,
// so a refactor that silently changes the protocol's data movement fails
// loudly even if bandwidth hardly moves.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/mpi_fm1.hpp"
#include "mpi/mpi_fm2.hpp"

namespace fmx {
namespace {

using sim::Cost;
using sim::CostLedger;
using sim::Engine;
using sim::Task;

constexpr int kMsgs = 50;
constexpr std::size_t kSize = 2048;

struct Pair {
  CostLedger tx, rx;
};

Pair run_fm1() {
  Engine eng;
  net::Cluster cluster(eng, net::sparc_fm1_cluster(2));
  fm1::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });
  eng.spawn([](fm1::Endpoint& ep) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm1::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  eng.run();
  return {tx.host().ledger(), rx.host().ledger()};
}

template <typename MpiT>
Pair run_mpi(const net::ClusterParams& cp) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  MpiT tx(cluster, 0), rx(cluster, 1);
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx));
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    std::vector<Bytes> bufs(kMsgs, Bytes(kSize));
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
  }(rx));
  eng.run();
  return {tx.fm().host().ledger(), rx.fm().host().ledger()};
}

double share(const CostLedger& l, Cost c) {
  return l.total() == 0 ? 0.0
                        : static_cast<double>(l.of(c)) /
                              static_cast<double>(l.total());
}

TEST(CostStructure, Fm1SenderIsPioBound) {
  auto p = run_fm1();
  // The Figure 3a claim: the I/O bus (programmed I/O) owns the send path.
  EXPECT_GT(share(p.tx, Cost::kPio), 0.75);
  EXPECT_EQ(p.tx.of(Cost::kCopy), 0u);  // PIO *is* the copy; no memcpy
}

TEST(CostStructure, Fm1ReceiverIsReassemblyBound) {
  auto p = run_fm1();
  // Multi-packet messages force staging reassembly (buffer management).
  EXPECT_GT(share(p.rx, Cost::kBufferMgmt), 0.6);
}

TEST(CostStructure, MpiFm1DrownsInCopies) {
  auto p = run_mpi<mpi::MpiFm1>(net::sparc_fm1_cluster(2));
  // §3.2: the interface forces memory-to-memory copies on both sides.
  EXPECT_GT(share(p.tx, Cost::kCopy), 0.4);
  EXPECT_GT(share(p.rx, Cost::kCopy), 0.5);
  // Receiver moves every payload byte at least 3x (reassembly, temp, user).
  EXPECT_GE(p.rx.copied_bytes(), 3u * kMsgs * kSize);
}

TEST(CostStructure, MpiFm2MovesEachByteOncePerSide) {
  auto p = run_mpi<mpi::MpiFm2>(net::ppro_fm2_cluster(2));
  std::uint64_t payload = static_cast<std::uint64_t>(kMsgs) * kSize;
  // One gather copy per byte on send, one stream->user copy on receive
  // (+ 24B headers and small slack).
  EXPECT_LT(p.tx.copied_bytes(), payload + kMsgs * 256);
  EXPECT_GE(p.tx.copied_bytes(), payload);
  EXPECT_LT(p.rx.copied_bytes(), payload + kMsgs * 256);
  EXPECT_GE(p.rx.copied_bytes(), payload);
}

TEST(CostStructure, MpiFm2MatchingIsThin) {
  auto p = run_mpi<mpi::MpiFm2>(net::ppro_fm2_cluster(2));
  // The §4.1 claim: with the right interface, the MPI layer adds thin
  // bookkeeping, not data movement. Matching + request mgmt stay a
  // minority of receiver host time; the copy dominates.
  EXPECT_GT(share(p.rx, Cost::kCopy), 0.5);
  EXPECT_LT(share(p.rx, Cost::kBufferMgmt), 0.1);
}

TEST(CostStructure, Fm1VsFm2SendCopyDiscipline) {
  // FM 2.x sender: exactly one gather copy per byte (plus headers).
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.skip(s.remaining());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  eng.run();
  std::uint64_t payload = static_cast<std::uint64_t>(kMsgs) * kSize;
  EXPECT_GE(tx.host().ledger().copied_bytes(), payload);
  EXPECT_LT(tx.host().ledger().copied_bytes(), payload + kMsgs * 64);
}

}  // namespace
}  // namespace fmx
