// Fat-tree parallel determinism: the open-loop traffic engine replayed on
// a fat-tree ParallelCluster must produce bit-identical completion digests
// and quantiles at 1, 2 and 4 worker threads, for every traffic pattern.
// This is the datacenter-scale analogue of parallel_determinism_test's
// chain workloads: multipath ECMP, per-pair lookahead from true fat-tree
// distances, and cross-shard flow timestamps all have to agree exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "myrinet/parallel_cluster.hpp"
#include "myrinet/topo.hpp"
#include "workload/traffic_engine.hpp"

namespace fmx {
namespace {

struct WaveOutcome {
  std::uint64_t digest = 0;
  std::uint64_t completed = 0;
  std::uint64_t events = 0;
  std::vector<double> p999;
};

WaveOutcome run_fat_tree(workload::TrafficPattern pattern, int threads,
                         int hosts = 32, int flows_per_host = 24) {
  auto params = net::fat_tree_cluster(hosts, /*radix=*/4, /*oversub=*/2);
  params.nic.host_ring_slots = 128;
  net::ParallelCluster cl(params, 4);
  workload::TrafficEngine te(cl);

  workload::TrafficConfig cfg;
  cfg.pattern = pattern;
  cfg.sizes = workload::SizeDistribution::log_uniform(32, 4096);
  cfg.flow_rate_per_host = 1e7;
  cfg.flows_per_host = flows_per_host;
  cfg.seed = 7;
  cfg.incast_fan_in = 8;
  const auto sched = workload::make_schedule(cfg, hosts);

  const auto wave = te.run_wave(sched, threads);
  WaveOutcome o;
  o.digest = wave.digest;
  o.completed = wave.completed;
  o.events = wave.events;
  for (const auto& lq : wave.layers) o.p999.push_back(lq.p999);
  EXPECT_EQ(wave.pending_roots, 0);
  EXPECT_EQ(o.completed, sched.total_flows);
  return o;
}

class FabricDeterminism
    : public ::testing::TestWithParam<workload::TrafficPattern> {};

TEST_P(FabricDeterminism, DigestIdenticalAcrossThreadCounts) {
  const auto ref = run_fat_tree(GetParam(), 1);
  for (int threads : {2, 4}) {
    const auto got = run_fat_tree(GetParam(), threads);
    EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
    EXPECT_EQ(got.events, ref.events) << threads << " threads";
    EXPECT_EQ(got.p999, ref.p999) << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FabricDeterminism,
    ::testing::Values(workload::TrafficPattern::kUniform,
                      workload::TrafficPattern::kPermutation,
                      workload::TrafficPattern::kIncast,
                      workload::TrafficPattern::kHotspot),
    [](const auto& p) { return workload::to_string(p.param); });

// The lookahead matrix must reflect true fat-tree distances: two hosts in
// the same pod are closer than two hosts in different pods, and the
// ParallelCluster picks the minimum over host pairs per shard pair.
TEST(FabricLookahead, TracksTopologyDistance) {
  auto params = net::fat_tree_cluster(32, 4, 2);
  const net::Topo topo(params.fabric, 32);
  // 8 hosts per pod (radix 4, oversub 2, 4 hosts per edge switch).
  ASSERT_EQ(topo.hops(0, 4), 3);   // same pod, different edge
  ASSERT_EQ(topo.hops(0, 8), 5);   // cross pod
  net::ParallelCluster cl(params, 8);  // 4 hosts per shard = one edge each
  // Shards 0 and 1 share a pod; shards 0 and 2 do not. More hops = more
  // conservative slack between the shards.
  EXPECT_GT(cl.lookahead(0, 2), cl.lookahead(0, 1));
  EXPECT_EQ(cl.lookahead(0, 2), cl.lookahead(0, 7));
}

// Open-loop schedule generation is pure: same seed, same flows; different
// seed, different flows — independent of everything else in this binary.
TEST(FabricSchedule, SeedReplay) {
  workload::TrafficConfig cfg;
  cfg.flows_per_host = 16;
  cfg.seed = 99;
  const auto a = workload::make_schedule(cfg, 16);
  const auto b = workload::make_schedule(cfg, 16);
  ASSERT_EQ(a.total_flows, b.total_flows);
  for (int h = 0; h < 16; ++h) {
    ASSERT_EQ(a.per_host[h].size(), b.per_host[h].size());
    for (std::size_t k = 0; k < a.per_host[h].size(); ++k) {
      EXPECT_EQ(a.per_host[h][k].dst, b.per_host[h][k].dst);
      EXPECT_EQ(a.per_host[h][k].size, b.per_host[h][k].size);
      EXPECT_EQ(a.per_host[h][k].arrival, b.per_host[h][k].arrival);
    }
  }
  cfg.seed = 100;
  const auto c = workload::make_schedule(cfg, 16);
  bool any_diff = false;
  for (int h = 0; h < 16 && !any_diff; ++h) {
    for (std::size_t k = 0; k < a.per_host[h].size(); ++k) {
      if (c.per_host[h].size() != a.per_host[h].size() ||
          c.per_host[h][k].arrival != a.per_host[h][k].arrival) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace fmx
