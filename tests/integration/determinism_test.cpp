// Determinism-digest regression test. A fixed-seed mixed workload — MPI-FM2
// and a socket stream sharing ONE FM 2.x endpoint per node, over a lossy
// fault profile with go-back-N link recovery — is reduced to a single
// 64-bit FNV-1a digest covering:
//   - periodic (sim-time, events-processed) samples during the run,
//   - the final clock, event count, endpoint / NIC / injector statistics,
//   - a CRC over every payload byte the receivers observed.
// The digest is pinned. Any change to event ordering, the scheduler queue,
// buffer management, or the protocol state machines that alters ANYTHING
// observable shows up here; refactors that claim "byte-identical
// simulation" (engine-queue swaps, buffer pooling) must keep it unchanged.
//
// If a deliberate semantic change moves the digest, re-pin kPinnedDigest
// with the value this test prints on failure — in the same commit as the
// change, with the reason in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/crc32.hpp"
#include "fault/injector.hpp"
#include "fm2/fm2.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"
#include "sockets/socket_fm.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

// 64-bit FNV-1a over little-endian words; order-sensitive by construction.
struct Digest {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

constexpr std::uint64_t kSeed = 17;
constexpr int kMpiMsgs = 12;
constexpr std::size_t kSockBytes = 20'000;
constexpr std::size_t kMpiSizes[] = {17, 256, 1500, 4096};

std::uint64_t run_workload() {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = true;  // losses recovered, still observable
  net::Cluster cluster(eng, params);
  fault::PlanInjector inj(eng, fault::FaultPlan::lossy(0.03, kSeed));
  fault::arm(cluster, inj);

  fm2::Endpoint ep0(cluster, 0), ep1(cluster, 1);
  mpi::MpiFm2 mpi0(ep0), mpi1(ep1);
  sock::SocketFm sock0(ep0), sock1(ep1);
  sock1.listen(80);

  Digest d;

  // MPI stream node0 -> node1, sizes cycling across packet boundaries.
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    for (int i = 0; i < kMpiMsgs; ++i) {
      Bytes m = pattern_bytes(i, kMpiSizes[i % 4]);
      co_await c.send(ByteSpan{m}, 1, 3);
    }
  }(mpi0));
  eng.spawn([](mpi::Comm& c, Digest& dg) -> Task<void> {
    for (int i = 0; i < kMpiMsgs; ++i) {
      Bytes buf(kMpiSizes[i % 4]);
      co_await c.recv(MutByteSpan{buf}, 0, 3);
      dg.mix(crc32(ByteSpan{buf}));
    }
  }(mpi1, d));

  // Socket stream in the same direction, multiplexed on the same endpoint.
  eng.spawn([](sock::SocketFm& s) -> Task<void> {
    sock::Socket* c = co_await s.connect(1, 80);
    Bytes msg = pattern_bytes(99, kSockBytes);
    co_await c->send(ByteSpan{msg});
    co_await c->close();
  }(sock0));
  eng.spawn([](sock::SocketFm& s, Digest& dg) -> Task<void> {
    sock::Socket* c = co_await s.accept(80);
    Bytes buf(kSockBytes);
    co_await c->recv_exact(MutByteSpan{buf});
    dg.mix(crc32(ByteSpan{buf}));
  }(sock1, d));

  // Periodic event-order probe: any scheduling change shifts at least one
  // (clock, events-processed) sample even if final totals happen to agree.
  eng.spawn([](Engine& e, Digest& dg) -> Task<void> {
    for (int i = 0; i < 32; ++i) {
      co_await e.delay(sim::us(50));
      dg.mix(e.now());
      dg.mix(e.events_processed());
    }
  }(eng, d));

  EXPECT_TRUE(test::run_to_exhaustion(eng));

  d.mix(eng.now());
  d.mix(eng.events_processed());
  const auto& s0 = ep0.stats();
  const auto& s1 = ep1.stats();
  d.mix(s0.packets_sent);
  d.mix(s0.credit_packets_sent);
  d.mix(s1.msgs_received);
  d.mix(s1.bytes_received);
  d.mix(s1.handler_starts);
  d.mix(s1.handler_resumes);
  d.mix(cluster.node(1).nic().stats().crc_dropped);
  d.mix(cluster.node(1).nic().stats().seq_dropped);
  d.mix(inj.stats().packets_seen);
  d.mix(inj.stats().drops);
  d.mix(inj.stats().corruptions);
  return d.h;
}

TEST(DeterminismDigest, DoubleRunSelfConsistency) {
  EXPECT_EQ(run_workload(), run_workload());
}

TEST(DeterminismDigest, MatchesPinnedValue) {
  // Pinned on the allocation-free engine/queue + pooled-buffer substrate.
  // See the header comment before re-pinning.
  constexpr std::uint64_t kPinnedDigest = 0xe6cedb5bf5c26150ull;
  std::uint64_t got = run_workload();
  EXPECT_EQ(got, kPinnedDigest)
      << "digest changed: observable simulation behavior differs; got 0x"
      << std::hex << got;
}

}  // namespace
}  // namespace fmx
