// Parallel-execution determinism: the sharded cluster must produce
// bit-identical results at every thread count, with 1-thread parallel mode
// as the reference "serial mode". The workload is an all-to-all FM 2.x
// message stream (sizes crossing packet boundaries) reduced to one FNV-1a
// digest over receiver-observed payload CRCs, endpoint/NIC/fabric/injector
// statistics, per-shard clocks, and the global event count — any
// divergence in cross-shard event ordering shows up here. (Window and
// barrier counts are deliberately excluded: under the published-horizon
// scheduler quantum boundaries depend on thread timing; the *simulated*
// state may not.) Run clean and
// under the seeded lossy fault plan from determinism_test.cpp (go-back-N
// recovery on), plus a golden-trace digest over the deterministically
// merged per-shard trace streams.
//
// If a deliberate semantic change moves a pinned value, re-pin it in the
// same commit with the reason in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/crc32.hpp"
#include "fault/injector.hpp"
#include "fm2/fm2.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "myrinet/params.hpp"

namespace fmx {
namespace {

using sim::Task;

struct Digest {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

constexpr int kNodes = 4;
constexpr int kMsgsPerPeer = 10;
constexpr std::uint64_t kSeed = 17;
constexpr std::size_t kSizes[] = {17, 256, 1024, 2048};
constexpr std::size_t kMaxSize = 2048;

std::uint64_t run_workload(int threads, bool lossy,
                           std::uint64_t* trace_digest = nullptr,
                           bool batching = true) {
  auto params = net::ppro_fm2_cluster(kNodes);
  if (lossy) params.nic.reliable_link = true;
  net::ParallelCluster cl(params);
  cl.par().set_window_batching(batching);
  std::vector<std::unique_ptr<fault::PlanInjector>> injectors;
  if (lossy) {
    injectors = fault::arm(cl, fault::FaultPlan::lossy(0.03, kSeed));
  }
  if (trace_digest != nullptr) cl.enable_tracing(1 << 16);

  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  std::vector<Digest> rx(kNodes);
  std::vector<int> got(kNodes, 0);
  std::vector<Bytes> sink(kNodes, Bytes(kMaxSize));
  for (int i = 0; i < kNodes; ++i) {
    eps.push_back(
        std::make_unique<fm2::Endpoint>(cl.node(i), cl.fabric_of(i)));
  }
  for (int i = 0; i < kNodes; ++i) {
    eps[i]->register_handler(
        0, [&rx, &sink, &got, i](fm2::RecvStream& s,
                                 int src) -> fm2::HandlerTask {
          const std::size_t n = s.msg_bytes();
          if (n > 0) co_await s.receive(sink[i].data(), n);
          rx[i].mix(crc32(ByteSpan{sink[i].data(), n}));
          rx[i].mix(static_cast<std::uint64_t>(src));
          ++got[i];
        });
  }

  for (int i = 0; i < kNodes; ++i) {
    cl.spawn_on(i, [](fm2::Endpoint& ep, int self) -> Task<void> {
      for (int m = 0; m < kMsgsPerPeer; ++m) {
        for (int j = 0; j < kNodes; ++j) {
          if (j == self) continue;
          Bytes msg =
              pattern_bytes(static_cast<std::uint64_t>(self) * 131 + m,
                            kSizes[(m + j) % 4]);
          co_await ep.send(j, 0, ByteSpan{msg});
        }
      }
    }(*eps[i], i));
    cl.spawn_on(i, [](fm2::Endpoint& ep, int& g) -> Task<void> {
      co_await ep.poll_until(
          [&g] { return g == kMsgsPerPeer * (kNodes - 1); });
    }(*eps[i], got[i]));
  }

  auto r = cl.run(threads);
  EXPECT_EQ(r.pending_roots, 0) << "deadlock: unfinished roots";

  Digest d;
  d.mix(r.events);
  for (int s = 0; s < cl.n_shards(); ++s) d.mix(cl.shard_engine(s).now());
  for (int i = 0; i < kNodes; ++i) {
    d.mix(rx[i].h);
    d.mix(static_cast<std::uint64_t>(got[i]));
    const auto& st = eps[i]->stats();
    d.mix(st.msgs_sent);
    d.mix(st.msgs_received);
    d.mix(st.bytes_received);
    d.mix(st.packets_sent);
    d.mix(st.handler_starts);
    d.mix(st.handler_resumes);
    d.mix(st.credit_packets_sent);
    const auto& ns = cl.node(i).nic().stats();
    d.mix(ns.tx_packets);
    d.mix(ns.rx_packets);
    d.mix(ns.crc_dropped);
    d.mix(ns.seq_dropped);
    d.mix(ns.retransmissions);
  }
  const auto fs = cl.fabric_stats();
  d.mix(fs.packets);
  d.mix(fs.payload_bytes);
  d.mix(fs.dropped);
  d.mix(fs.corrupted);
  d.mix(fs.duplicated);
  for (const auto& inj : injectors) {
    d.mix(inj->stats().packets_seen);
    d.mix(inj->stats().drops);
    d.mix(inj->stats().corruptions);
  }

  if (trace_digest != nullptr) {
    Digest td;
    for (const trace::Event& e : cl.merged_trace()) {
      td.mix(e.t);
      td.mix(e.msg_id);
      td.mix(e.arg);
      td.mix(static_cast<std::uint64_t>(e.node));
      td.mix(static_cast<std::uint64_t>(e.layer));
      td.mix(static_cast<std::uint64_t>(e.type));
    }
    *trace_digest = td.h;
  }
  return d.h;
}

// --- Rendezvous/RDMA-heavy workload ----------------------------------------
// Messages above the MPI-FM2 eager threshold negotiate RTS/CTS and move
// their payloads as kRdmaWrite chunks the destination NIC places directly
// into the posted receive buffer — a different packet kind, a different
// completion path, and pin-down cache traffic, all of which must stay
// bit-identical at any thread count. Ring traffic keeps every stream
// crossing a shard boundary; one eager-sized message per pair interleaves
// the two data planes.
constexpr std::size_t kRdzvSizes[] = {8 * 1024 + 1, 12 * 1024, 640,
                                      16 * 1024 + 7};
constexpr int kRdzvMsgs = 4;

std::uint64_t run_rdzv_workload(int threads) {
  net::ParallelCluster cl(net::ppro_fm2_cluster(kNodes));
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  std::vector<std::unique_ptr<mpi::MpiFm2>> mps;
  mpi::MpiFm2Options opt;
  opt.eager_threshold = 2048;
  for (int i = 0; i < kNodes; ++i) {
    eps.push_back(
        std::make_unique<fm2::Endpoint>(cl.node(i), cl.fabric_of(i)));
    mps.push_back(std::make_unique<mpi::MpiFm2>(*eps[i], opt));
  }

  std::vector<Digest> rx(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    cl.spawn_on(i, [](mpi::MpiFm2& c, int self) -> Task<void> {
      const int dst = (self + 1) % kNodes;
      for (int k = 0; k < kRdzvMsgs; ++k) {
        Bytes m = pattern_bytes(static_cast<std::uint64_t>(self) * 977 + k,
                                kRdzvSizes[k]);
        co_await c.send(ByteSpan{m}, dst, k);
      }
    }(*mps[i], i));
    cl.spawn_on(i, [](mpi::MpiFm2& c, Digest& dg, int self) -> Task<void> {
      const int src = (self + kNodes - 1) % kNodes;
      for (int k = 0; k < kRdzvMsgs; ++k) {
        Bytes buf(kRdzvSizes[k]);
        co_await c.recv(MutByteSpan{buf}, src, k);
        dg.mix(crc32(ByteSpan{buf}));
      }
    }(*mps[i], rx[i], i));
  }

  auto r = cl.run(threads);
  EXPECT_EQ(r.pending_roots, 0) << "deadlock: unfinished roots";

  Digest d;
  d.mix(r.events);
  for (int s = 0; s < cl.n_shards(); ++s) d.mix(cl.shard_engine(s).now());
  std::uint64_t reg_misses = 0;
  for (int i = 0; i < kNodes; ++i) {
    d.mix(rx[i].h);
    const auto& st = eps[i]->stats();
    d.mix(st.msgs_sent);
    d.mix(st.bytes_received);
    d.mix(st.packets_sent);
    d.mix(st.handler_starts);
    const auto& ns = cl.node(i).nic().stats();
    d.mix(ns.tx_packets);
    d.mix(ns.rx_packets);
    const auto& rs = cl.node(i).host().reg_cache().stats();
    d.mix(rs.hits);
    d.mix(rs.misses);
    d.mix(rs.evictions);
    d.mix(rs.pinned_bytes);
    reg_misses += rs.misses;
  }
  const auto fs = cl.fabric_stats();
  d.mix(fs.packets);
  d.mix(fs.payload_bytes);
  EXPECT_GT(reg_misses, 0u) << "rendezvous never took the RDMA path";
  return d.h;
}

// --- NIC-offloaded collective workload --------------------------------------
// Barrier/bcast/reduce run inside the NIC control programs: combining and
// fan-out forwarding are NIC-to-NIC packets crossing shard boundaries, the
// fold order is the tree's child order, and completions are polled. Every
// double produced, every combine/forward counter, and the trace stream
// must be bit-identical at any thread count. The full group spans all 8
// nodes; a second group over {0, 3, 5, 6} keeps a sparse reduction tree
// whose every edge crosses shards in the maximally-sharded run.
constexpr int kCollNodes = 8;

std::uint64_t run_coll_workload(int threads, bool lossy) {
  auto params = net::ppro_fm2_cluster(kCollNodes);
  if (lossy) params.nic.reliable_link = true;
  net::ParallelCluster cl(params);
  std::vector<std::unique_ptr<fault::PlanInjector>> injectors;
  if (lossy) {
    injectors = fault::arm(cl, fault::FaultPlan::lossy(0.03, kSeed));
  }
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < kCollNodes; ++i) {
    eps.push_back(
        std::make_unique<fm2::Endpoint>(cl.node(i), cl.fabric_of(i)));
  }
  net::CollGroupSpec all;
  all.id = 1;
  for (int i = 0; i < kCollNodes; ++i) all.members.push_back(i);
  all.radix = 2;
  net::CollGroupSpec sparse;
  sparse.id = 2;
  sparse.members = {3, 0, 5, 6};  // root 3: tree edges all cross shards
  sparse.radix = 2;

  std::vector<std::vector<double>> sums(kCollNodes);
  std::vector<Bytes> bc(kCollNodes, Bytes(128));
  std::vector<double> sparse_out(kCollNodes, 0.0);
  for (int i = 0; i < kCollNodes; ++i) {
    const bool in_sparse = i == 0 || i == 3 || i == 5 || i == 6;
    cl.spawn_on(i, [](fm2::Endpoint& ep, net::CollGroupSpec a,
                      net::CollGroupSpec sp, bool member, int rank,
                      std::vector<double>& sum, MutByteSpan bcast,
                      double& sout) -> Task<void> {
      co_await ep.coll_join(a);
      if (member) co_await ep.coll_join(sp);
      for (int r = 0; r < 3; ++r) {
        double v[2] = {rank * 1.25 + r, double(rank % 3)};
        co_await ep.coll_allreduce(a.id, std::span<double>{v, 2},
                                   fm2::Endpoint::CollRed::kSum);
        sum.push_back(v[0]);
        sum.push_back(v[1]);
        co_await ep.coll_barrier(a.id);
      }
      if (rank == 0) {
        Bytes src = pattern_bytes(42, bcast.size());
        std::copy(src.begin(), src.end(), bcast.begin());
      }
      co_await ep.coll_bcast(a.id, bcast);
      if (member) {
        double s = 1.0 + rank;
        co_await ep.coll_allreduce(sp.id, std::span<double>{&s, 1},
                                   fm2::Endpoint::CollRed::kMax);
        sout = s;
      }
      double red[2] = {double(rank), -double(rank)};
      co_await ep.coll_reduce(a.id, std::span<double>{red, 2},
                              fm2::Endpoint::CollRed::kSum);
      if (rank == 0) {
        sum.push_back(red[0]);
        sum.push_back(red[1]);
      }
    }(*eps[i], all, sparse, in_sparse, i, sums[i], MutByteSpan{bc[i]},
      sparse_out[i]));
  }

  auto r = cl.run(threads);
  EXPECT_EQ(r.pending_roots, 0) << "deadlock: unfinished roots";

  Digest d;
  d.mix(r.events);
  for (int s = 0; s < cl.n_shards(); ++s) d.mix(cl.shard_engine(s).now());
  for (int i = 0; i < kCollNodes; ++i) {
    d.mix(crc32(ByteSpan{reinterpret_cast<const std::byte*>(sums[i].data()),
                         sums[i].size() * sizeof(double)}));
    d.mix(crc32(ByteSpan{bc[i]}));
    std::uint64_t sbits;
    std::memcpy(&sbits, &sparse_out[i], sizeof(sbits));
    d.mix(sbits);
    const auto& ns = cl.node(i).nic().stats();
    d.mix(ns.coll_rx_packets);
    d.mix(ns.coll_combines);
    d.mix(ns.coll_forwards);
    d.mix(ns.coll_completions);
    d.mix(ns.coll_orphaned);
    d.mix(ns.coll_stale);
    d.mix(ns.tx_packets);
    d.mix(ns.retransmissions);
    d.mix(eps[i]->stats().handler_starts);
    EXPECT_EQ(cl.node(i).nic().coll_pending(), 0u) << "node " << i;
  }
  const auto fs = cl.fabric_stats();
  d.mix(fs.packets);
  d.mix(fs.payload_bytes);
  d.mix(fs.dropped);
  d.mix(fs.corrupted);
  for (const auto& inj : injectors) {
    d.mix(inj->stats().packets_seen);
    d.mix(inj->stats().drops);
  }
  return d.h;
}

TEST(ParallelDeterminism, NicCollectivesBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = run_coll_workload(1, false);
  EXPECT_EQ(run_coll_workload(2, false), serial);
  EXPECT_EQ(run_coll_workload(4, false), serial);
}

TEST(ParallelDeterminism, NicCollectivesLossyBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = run_coll_workload(1, true);
  EXPECT_EQ(run_coll_workload(2, true), serial);
  EXPECT_EQ(run_coll_workload(4, true), serial);
}

TEST(ParallelDeterminism, RendezvousRdmaBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = run_rdzv_workload(1);
  EXPECT_EQ(run_rdzv_workload(2), serial);
  EXPECT_EQ(run_rdzv_workload(4), serial);
}

TEST(ParallelDeterminism, CleanBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = run_workload(1, false);
  EXPECT_EQ(run_workload(2, false), serial);
  EXPECT_EQ(run_workload(4, false), serial);
}

TEST(ParallelDeterminism, LossyFaultPlanBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = run_workload(1, true);
  EXPECT_EQ(run_workload(2, true), serial);
  EXPECT_EQ(run_workload(4, true), serial);
}

TEST(ParallelDeterminism, GoldenTraceBitIdenticalAcrossThreadCounts) {
  std::uint64_t t1 = 0, t2 = 0, t4 = 0;
  const std::uint64_t d1 = run_workload(1, false, &t1);
  const std::uint64_t d2 = run_workload(2, false, &t2);
  const std::uint64_t d4 = run_workload(4, false, &t4);
  EXPECT_EQ(d2, d1);
  EXPECT_EQ(d4, d1);
  EXPECT_EQ(t2, t1);
  EXPECT_EQ(t4, t1);
  EXPECT_NE(t1, Digest{}.h) << "trace digest must cover events";
}

// Window batching is a pure scheduling optimisation: with it off, quanta
// are chopped to the minimum pairwise lookahead like the historical
// barrier scheme, yet every simulated result must stay bit-identical —
// at 1 thread (pure chopping) and with real concurrency.
TEST(ParallelDeterminism, BatchingOnVsOffBitIdentical) {
  const std::uint64_t on = run_workload(1, false);
  EXPECT_EQ(run_workload(1, false, nullptr, false), on);
  EXPECT_EQ(run_workload(4, false, nullptr, false), on);
  const std::uint64_t lossy_on = run_workload(1, true);
  EXPECT_EQ(run_workload(2, true, nullptr, false), lossy_on);
}

TEST(ParallelDeterminism, MatchesPinnedValues) {
  // Re-pinned for the published-horizon scheduler: the window count left
  // the digest (it is now scheduling-dependent) and shard clocks stay at
  // each shard's last executed event instead of being bumped to barrier
  // window boundaries, so the final now() values changed. See the header
  // comment before re-pinning.
  constexpr std::uint64_t kPinnedClean = 0xce85c6163cef0b36ull;
  constexpr std::uint64_t kPinnedLossy = 0xf417d10353140d4dull;
  const std::uint64_t clean = run_workload(1, false);
  const std::uint64_t lossy = run_workload(1, true);
  EXPECT_EQ(clean, kPinnedClean)
      << "clean digest changed; got 0x" << std::hex << clean;
  EXPECT_EQ(lossy, kPinnedLossy)
      << "lossy digest changed; got 0x" << std::hex << lossy;
}

}  // namespace
}  // namespace fmx
