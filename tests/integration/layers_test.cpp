// Integration: several user-level libraries layered over ONE FM 2.x
// endpoint per node — the deployment model of the real Fast Messages
// (one FM instance per process; each library owns handler ids). Any
// library's extract drives everyone's handlers, so progress is shared.
#include <gtest/gtest.h>

#include <memory>

#include "ga/global_array.hpp"
#include "mpi/mpi_fm2.hpp"
#include "shmem/shmem.hpp"
#include "sockets/socket_fm.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

struct Node {
  Node(net::Cluster& cluster, int id)
      : ep(cluster, id), mpi(ep), sock(ep), shm(ep) {}
  fm2::Endpoint ep;
  mpi::MpiFm2 mpi;
  sock::SocketFm sock;
  shmem::ShmemCtx shm;
};

TEST(LayerComposition, MpiSocketsShmemShareOneEndpoint) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  Node n0(cluster, 0), n1(cluster, 1);
  n1.sock.listen(80);

  bool mpi_done = false, sock_done = false, shm_done = false;

  // MPI traffic node0 -> node1.
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    for (std::uint32_t i = 0; i < 20; ++i) {
      Bytes m = pattern_bytes(i, 700);
      co_await c.send(ByteSpan{m}, 1, 5);
    }
  }(n0.mpi));
  eng.spawn([](mpi::Comm& c, bool& d) -> Task<void> {
    for (std::uint32_t i = 0; i < 20; ++i) {
      Bytes buf(700);
      co_await c.recv(MutByteSpan{buf}, 0, 5);
      EXPECT_EQ(pattern_mismatch(i, 0, ByteSpan{buf}), -1);
    }
    d = true;
  }(n1.mpi, mpi_done));

  // A socket stream in the same direction, interleaved on the same wire.
  eng.spawn([](sock::SocketFm& s) -> Task<void> {
    sock::Socket* c = co_await s.connect(1, 80);
    Bytes msg = pattern_bytes(999, 50'000);
    co_await c->send(ByteSpan{msg});
    co_await c->close();
  }(n0.sock));
  eng.spawn([](sock::SocketFm& s, bool& d) -> Task<void> {
    sock::Socket* c = co_await s.accept(80);
    Bytes buf(50'000);
    co_await c->recv_exact(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(999, 0, ByteSpan{buf}), -1);
    d = true;
  }(n1.sock, sock_done));

  // One-sided puts and a remote atomic from node0 into node1's heap.
  eng.spawn([](shmem::ShmemCtx& me, fm2::Endpoint& target,
               bool& d) -> Task<void> {
    Bytes data = pattern_bytes(55, 4'000);
    co_await me.put(1, 0, ByteSpan{data});
    co_await me.quiet();
    for (int i = 0; i < 5; ++i) (void)co_await me.fetch_add(1, 8'000, 2);
    d = true;
    target.kick();
  }(n0.shm, n1.ep, shm_done));
  // One-sided targets must keep extracting (shmem progress rule): node 1
  // serves until the initiator reports completion.
  eng.spawn([](shmem::ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(n1.shm, shm_done));

  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_TRUE(mpi_done);
  EXPECT_TRUE(sock_done);
  EXPECT_TRUE(shm_done);
  EXPECT_EQ(pattern_mismatch(55, 0,
                             ByteSpan{n1.shm.heap()}.subspan(0, 4'000)),
            -1);
  std::int64_t counter;
  std::memcpy(&counter, n1.shm.heap().data() + 8'000, 8);
  EXPECT_EQ(counter, 10);
  // All traffic shared one endpoint: per-layer stats prove multiplexing.
  EXPECT_EQ(n1.mpi.stats().recvs, 20u);
  EXPECT_GT(n1.sock.stats().bytes_received, 0u);
}

TEST(LayerComposition, CrossLayerProgressDriving) {
  // A blocked MPI recv's progress loop must also serve shmem requests
  // arriving at the same node — shared extraction is what makes one-sided
  // ops usable without a dedicated progress thread.
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  Node n0(cluster, 0), n1(cluster, 1);

  bool remote_done = false;
  // Node 1 blocks in MPI recv (nothing will arrive for a while).
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    Bytes buf(64);
    co_await c.recv(MutByteSpan{buf}, 0, 9);  // blocks, driving extract
    EXPECT_EQ(pattern_mismatch(3, 0, ByteSpan{buf}), -1);
  }(n1.mpi));
  // Node 0 does one-sided traffic against node 1 *then* unblocks the recv.
  eng.spawn([](shmem::ShmemCtx& shm, mpi::Comm& c, bool& d) -> Task<void> {
    Bytes data = pattern_bytes(77, 1'000);
    co_await shm.put(1, 100, ByteSpan{data});
    co_await shm.quiet();  // needs node 1 to extract: its MPI recv does it
    Bytes out(1'000);
    co_await shm.get(1, 100, MutByteSpan{out});
    EXPECT_EQ(pattern_mismatch(77, 0, ByteSpan{out}), -1);
    d = true;
    Bytes m = pattern_bytes(3, 64);
    co_await c.send(ByteSpan{m}, 1, 9);
  }(n0.shm, n0.mpi, remote_done));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_TRUE(remote_done);
}

TEST(LayerComposition, FourNodesCollectivesPlusOneSided) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(4));
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<Node>(cluster, i));
  }
  int done = 0;
  for (int r = 0; r < 4; ++r) {
    eng.spawn([](Node& me, int rank, int& d) -> Task<void> {
      // Mix a collective with one-sided puts to the next node over.
      std::vector<double> v{static_cast<double>(rank)};
      co_await me.mpi.allreduce_sum(std::span<double>{v});
      EXPECT_DOUBLE_EQ(v[0], 6.0);  // 0+1+2+3
      Bytes b = pattern_bytes(rank, 512);
      co_await me.shm.put((rank + 1) % 4, 0, ByteSpan{b});
      co_await me.shm.quiet();
      co_await me.mpi.barrier();
      ++d;
    }(*nodes[r], r, done));
  }
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_EQ(done, 4);
  for (int r = 0; r < 4; ++r) {
    int writer = (r + 3) % 4;
    EXPECT_EQ(pattern_mismatch(writer, 0,
                               ByteSpan{nodes[r]->shm.heap()}.subspan(0, 512)),
              -1);
  }
}

}  // namespace
}  // namespace fmx
