// Steady-state allocation freedom for the sharded parallel engine at real
// concurrency, enforced with the benchmark operator-new hook (linked into
// this binary only, like test_trace — the hook is a global replacement and
// must not leak into other test executables).
//
// After one warmup wave (per-shard buffer/frame pools carved, SPSC rings
// preallocated, the persistent worker pool spawned), a second full
// all-to-all wave at 4 threads must perform zero heap allocations: no
// per-event, per-packet, per-quantum, or per-park allocation anywhere in
// the engine, transport, or synchronization path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/common/alloc_hook.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "myrinet/params.hpp"

namespace fmx {
namespace {

constexpr int kNodes = 4;
constexpr int kMsgsPerPeer = 30;
constexpr std::size_t kMsgSize = 1024;

void wave(net::ParallelCluster& cl,
          std::vector<std::unique_ptr<fm2::Endpoint>>& eps,
          std::vector<int>& got, const Bytes& payload, int threads) {
  std::fill(got.begin(), got.end(), 0);
  for (int i = 0; i < kNodes; ++i) {
    cl.spawn_on(i, [](fm2::Endpoint& ep, ByteSpan msg, int self,
                      int n) -> sim::Task<void> {
      for (int m = 0; m < n; ++m) {
        for (int j = 0; j < kNodes; ++j) {
          if (j != self) co_await ep.send(j, 0, msg);
        }
      }
    }(*eps[i], ByteSpan{payload}, i, kMsgsPerPeer));
    cl.spawn_on(i, [](fm2::Endpoint& ep, int& g, int want) -> sim::Task<void> {
      co_await ep.poll_until([&g, want] { return g == want; });
    }(*eps[i], got[i], kMsgsPerPeer * (kNodes - 1)));
  }
  const auto r = cl.run(threads);
  ASSERT_EQ(r.pending_roots, 0);
}

TEST(ParallelAlloc, SteadyStateAllocationFreeAt4Threads) {
  auto params = net::ppro_fm2_cluster(kNodes);
  net::ParallelCluster cl(params);
  ASSERT_EQ(cl.n_shards(), kNodes);
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < kNodes; ++i) {
    eps.push_back(
        std::make_unique<fm2::Endpoint>(cl.node(i), cl.fabric_of(i)));
  }
  std::vector<int> got(kNodes, 0);
  std::vector<Bytes> sink(kNodes, Bytes(kMsgSize));
  for (int i = 0; i < kNodes; ++i) {
    eps[i]->register_handler(
        0, [&sink, &got, i](fm2::RecvStream& s, int) -> fm2::HandlerTask {
          const std::size_t n = s.msg_bytes();
          if (n > 0) co_await s.receive(sink[i].data(), n);
          ++got[i];
        });
  }
  const Bytes payload = pattern_bytes(11, kMsgSize);

  // Warm every pool and spawn the persistent worker threads.
  wave(cl, eps, got, payload, /*threads=*/4);

  bench::alloc_hook_reset();
  wave(cl, eps, got, payload, /*threads=*/4);
  EXPECT_EQ(bench::alloc_hook_count(), 0u)
      << "sharded steady state allocated: a per-event/per-quantum/per-park "
         "allocation crept back into the parallel hot path";
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(got[i], kMsgsPerPeer * (kNodes - 1));
  }
}

}  // namespace
}  // namespace fmx
