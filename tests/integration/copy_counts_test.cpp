// Pins the exact per-message copy counts each layer charges to the cost
// ledger — the numbers behind the paper's "one copy on the receive path"
// claim and the headline table's copies/msg columns. The counts are
// derived from the segment size, so the test fails loudly if a layer ever
// double-counts a copy (e.g. charging both the FM staging copy and a NIC
// copy for the same bytes) or silently adds a staging hop.
//
// Expected model, P = ceil(msg_size / max_payload_per_packet):
//   FM 1.x tx: P copies (host assembles + PIOs/pins each packet once)
//   FM 1.x rx: P copies for multi-packet messages (packet -> staging
//              buffer; the handler then reads the staging span in place),
//              0 copies for single-packet messages (handler reads the
//              ring slot in place).
//   FM 2.x tx: P copies (the gather copy, user piece -> packet under
//              assembly; DMA fetches it without another host copy)
//   FM 2.x rx: P copies (the single stream -> user copy, charged once
//              per packet as the receive request drains the ring)
//
// The zero-copy data plane adds a second dimension: the *physical* copies
// the simulator process performs (CopyStats). Every modeled copy above
// moves bytes exactly once, and nothing else does — per-hop real copies
// (NIC retention, wire transit, fault duplication) must be zero in a
// serial run. A 2-shard parallel run keeps the modeled and endpoint
// counts bit-identical and adds only the explicit one-copy-per-side
// cross-shard boundary, counted as per-hop copies.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/copy_stats.hpp"
#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

constexpr int kMsgs = 10;

struct Copies {
  std::uint64_t tx = 0, rx = 0;
  std::size_t packets_per_msg = 0;
  CopyStats::Snapshot real;
};

Copies fm1_copies(std::size_t msg_size) {
  Engine eng;
  net::Cluster cluster(eng, net::sparc_fm1_cluster(2));
  fm1::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });
  eng.spawn([](fm1::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, msg_size));
  eng.spawn([](fm1::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  CopyStats::instance().reset();
  EXPECT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = tx.max_payload_per_packet();
  return Copies{tx.host().ledger().copies(), rx.host().ledger().copies(),
                (msg_size + seg - 1) / seg, CopyStats::instance().snapshot()};
}

Copies fm2_copies(std::size_t msg_size, bool reliable_link = false) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = reliable_link;
  net::Cluster cluster(eng, params);
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(msg_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, msg_size));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  CopyStats::instance().reset();
  EXPECT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = tx.max_payload_per_packet();
  return Copies{tx.host().ledger().copies(), rx.host().ledger().copies(),
                (msg_size + seg - 1) / seg, CopyStats::instance().snapshot()};
}

// Same FM 2.x stream, but across the 2-shard parallel cluster (node 0 and
// node 1 live on different shards, so every wire packet crosses the SPSC
// boundary).
Copies fm2_parallel_copies(std::size_t msg_size, int threads) {
  net::ParallelCluster cl(net::ppro_fm2_cluster(2), 2);
  fm2::Endpoint tx(cl.node(0), cl.fabric_of(0));
  fm2::Endpoint rx(cl.node(1), cl.fabric_of(1));
  int got = 0;
  Bytes sink(msg_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  cl.spawn_on(0, [](fm2::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, msg_size));
  cl.spawn_on(1, [](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  CopyStats::instance().reset();
  auto r = cl.run(threads);
  EXPECT_EQ(r.pending_roots, 0);
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = tx.max_payload_per_packet();
  return Copies{cl.node(0).host().ledger().copies(),
                cl.node(1).host().ledger().copies(),
                (msg_size + seg - 1) / seg, CopyStats::instance().snapshot()};
}

// Every physical copy the serial data plane still makes is a modeled
// endpoint copy — and per-hop copies are gone entirely.
void expect_zero_copy_hops(const Copies& c) {
  EXPECT_EQ(c.real.hop_copies, 0u) << "per-hop physical copy on the serial "
                                      "wire path (retention/COW/staging)";
  EXPECT_EQ(c.real.endpoint_copies, c.tx + c.rx)
      << "physical endpoint copies diverged from the modeled count";
}

// MPI-FM2 rendezvous stream: every message is above the eager threshold,
// so with rdma on each payload moves as remote-memory writes and the only
// host-side byte movement is the 24-byte control envelopes.
Copies rdzv_copies(std::size_t msg_size, bool rdma, int threads = 0) {
  mpi::MpiFm2Options opt;
  opt.eager_threshold = 1024;
  opt.rdma = rdma;
  int got = 0;
  auto receiver = [](mpi::MpiFm2& c, std::size_t sz, int& g) -> Task<void> {
    Bytes buf(sz);
    for (int i = 0; i < kMsgs; ++i) {
      co_await c.recv(MutByteSpan{buf}, 0, i);
      ++g;
    }
  };
  auto sender = [](mpi::MpiFm2& c, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await c.send(ByteSpan{m}, 1, i);
  };
  if (threads == 0) {  // serial cluster
    Engine eng;
    net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
    mpi::MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
    eng.spawn(sender(tx, msg_size));
    eng.spawn(receiver(rx, msg_size, got));
    CopyStats::instance().reset();
    EXPECT_TRUE(test::run_to_exhaustion(eng));
    EXPECT_EQ(got, kMsgs);
    const std::size_t seg = tx.fm().max_payload_per_packet();
    return Copies{tx.fm().host().ledger().copies(),
                  rx.fm().host().ledger().copies(),
                  (msg_size + seg - 1) / seg, CopyStats::instance().snapshot()};
  }
  net::ParallelCluster cl(net::ppro_fm2_cluster(2), 2);
  fm2::Endpoint ep0(cl.node(0), cl.fabric_of(0));
  fm2::Endpoint ep1(cl.node(1), cl.fabric_of(1));
  mpi::MpiFm2 tx(ep0, opt), rx(ep1, opt);
  cl.spawn_on(0, sender(tx, msg_size));
  cl.spawn_on(1, receiver(rx, msg_size, got));
  CopyStats::instance().reset();
  auto r = cl.run(threads);
  EXPECT_EQ(r.pending_roots, 0);
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = ep0.max_payload_per_packet();
  return Copies{cl.node(0).host().ledger().copies(),
                cl.node(1).host().ledger().copies(),
                (msg_size + seg - 1) / seg, CopyStats::instance().snapshot()};
}

TEST(CopyCounts, Fm1MultiPacket) {
  Copies c = fm1_copies(2048);
  ASSERT_GT(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, kMsgs * c.packets_per_msg);
  EXPECT_EQ(c.rx, kMsgs * c.packets_per_msg);
  expect_zero_copy_hops(c);
}

TEST(CopyCounts, Fm1SinglePacketHasNoReceiveCopy) {
  Copies c = fm1_copies(64);
  ASSERT_EQ(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, static_cast<std::uint64_t>(kMsgs));
  // Single-packet FM 1.x messages skip staging: the handler reads the
  // packet in place, so the receive path charges zero copies.
  EXPECT_EQ(c.rx, 0u);
  expect_zero_copy_hops(c);
}

TEST(CopyCounts, Fm2OneCopyPerPacketEachSide) {
  Copies c = fm2_copies(8192);
  ASSERT_GT(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, kMsgs * c.packets_per_msg);
  EXPECT_EQ(c.rx, kMsgs * c.packets_per_msg);
  expect_zero_copy_hops(c);
}

TEST(CopyCounts, Fm2ReliableLinkRetentionSharesNotCopies) {
  // Go-back-N retention keeps a reference to every in-flight packet; on a
  // clean fabric that sharing must never turn into a physical copy, and
  // the modeled counts are identical to the unreliable run.
  Copies plain = fm2_copies(8192);
  Copies rel = fm2_copies(8192, /*reliable_link=*/true);
  EXPECT_EQ(rel.tx, plain.tx);
  EXPECT_EQ(rel.rx, plain.rx);
  expect_zero_copy_hops(rel);
}

TEST(CopyCounts, Fm2ParallelShardsAddOnlyTheCrossShardCopies) {
  Copies serial = fm2_copies(8192);
  for (int threads : {1, 2}) {
    Copies par = fm2_parallel_copies(8192, threads);
    // Modeled charges are thread-count- and sharding-invariant.
    EXPECT_EQ(par.tx, serial.tx) << threads << " threads";
    EXPECT_EQ(par.rx, serial.rx) << threads << " threads";
    // The simulated API still moves bytes exactly where the model says.
    EXPECT_EQ(par.real.endpoint_copies, serial.real.endpoint_copies)
        << threads << " threads";
    // The SPSC boundary is the one real copy pair per crossing packet —
    // present, counted, and the only per-hop copies in the run.
    EXPECT_GT(par.real.hop_copies, 0u) << threads << " threads";
    EXPECT_EQ(par.real.hop_copies % 2, 0u)
        << threads << " threads: encode and decode must pair up";
  }
}

TEST(CopyCounts, RendezvousRdmaMovesPayloadWithZeroHostCopies) {
  constexpr std::size_t kSize = 32 * 1024;
  Copies c = rdzv_copies(kSize, /*rdma=*/true);
  // Every payload byte is placed by the NIC DMA engine exactly once ...
  EXPECT_EQ(c.real.rdma_bytes, static_cast<std::uint64_t>(kMsgs) * kSize);
  EXPECT_GT(c.real.rdma_writes, 0u);
  // ... no packet is staged or duplicated anywhere on the wire path ...
  EXPECT_EQ(c.real.hop_copies, 0u);
  // ... and host-side byte movement is the control envelopes alone
  // (RTS/CTS/DONE, 24-byte headers), never the payload.
  EXPECT_LT(c.real.endpoint_bytes, static_cast<std::uint64_t>(kMsgs) * 1024);
}

TEST(CopyCounts, RendezvousStagedAblationPaysTheCopiesRdmaRemoves) {
  // rdma=false keeps the negotiation but streams the payload through the
  // normal host-staged path: the copies come back, proving the zero-copy
  // claim above is the RDMA plane's doing and not an accounting artifact.
  constexpr std::size_t kSize = 32 * 1024;
  Copies staged = rdzv_copies(kSize, /*rdma=*/false);
  EXPECT_EQ(staged.real.rdma_bytes, 0u);
  EXPECT_GE(staged.real.endpoint_bytes,
            static_cast<std::uint64_t>(kMsgs) * kSize);
  EXPECT_EQ(staged.real.hop_copies, 0u);
}

TEST(CopyCounts, RendezvousRdmaParallelAddsOnlyCrossShardCopies) {
  constexpr std::size_t kSize = 32 * 1024;
  Copies serial = rdzv_copies(kSize, /*rdma=*/true);
  for (int threads : {1, 2}) {
    Copies par = rdzv_copies(kSize, /*rdma=*/true, threads);
    EXPECT_EQ(par.real.rdma_bytes, static_cast<std::uint64_t>(kMsgs) * kSize)
        << threads << " threads";
    EXPECT_EQ(par.real.endpoint_bytes, serial.real.endpoint_bytes)
        << threads << " threads";
    // RDMA chunks crossing the shard boundary ride the SPSC ring like any
    // other packet: one encode+decode copy pair each, and nothing else.
    EXPECT_GT(par.real.hop_copies, 0u) << threads << " threads";
    EXPECT_EQ(par.real.hop_copies % 2, 0u)
        << threads << " threads: encode and decode must pair up";
  }
}

}  // namespace
}  // namespace fmx
