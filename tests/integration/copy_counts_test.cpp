// Pins the exact per-message copy counts each layer charges to the cost
// ledger — the numbers behind the paper's "one copy on the receive path"
// claim and the headline table's copies/msg columns. The counts are
// derived from the segment size, so the test fails loudly if a layer ever
// double-counts a copy (e.g. charging both the FM staging copy and a NIC
// copy for the same bytes) or silently adds a staging hop.
//
// Expected model, P = ceil(msg_size / max_payload_per_packet):
//   FM 1.x tx: P copies (host assembles + PIOs/pins each packet once)
//   FM 1.x rx: P copies for multi-packet messages (packet -> staging
//              buffer; the handler then reads the staging span in place),
//              0 copies for single-packet messages (handler reads the
//              ring slot in place).
//   FM 2.x tx: P copies (the gather copy, user piece -> packet under
//              assembly; DMA fetches it without another host copy)
//   FM 2.x rx: P copies (the single stream -> user copy, charged once
//              per packet as the receive request drains the ring)
#include <gtest/gtest.h>

#include <cstdint>

#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

constexpr int kMsgs = 10;

struct Copies {
  std::uint64_t tx = 0, rx = 0;
  std::size_t packets_per_msg = 0;
};

Copies fm1_copies(std::size_t msg_size) {
  Engine eng;
  net::Cluster cluster(eng, net::sparc_fm1_cluster(2));
  fm1::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });
  eng.spawn([](fm1::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, msg_size));
  eng.spawn([](fm1::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  EXPECT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = tx.max_payload_per_packet();
  return Copies{tx.host().ledger().copies(), rx.host().ledger().copies(),
                (msg_size + seg - 1) / seg};
}

Copies fm2_copies(std::size_t msg_size) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(msg_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx, msg_size));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  EXPECT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kMsgs);
  const std::size_t seg = tx.max_payload_per_packet();
  return Copies{tx.host().ledger().copies(), rx.host().ledger().copies(),
                (msg_size + seg - 1) / seg};
}

TEST(CopyCounts, Fm1MultiPacket) {
  Copies c = fm1_copies(2048);
  ASSERT_GT(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, kMsgs * c.packets_per_msg);
  EXPECT_EQ(c.rx, kMsgs * c.packets_per_msg);
}

TEST(CopyCounts, Fm1SinglePacketHasNoReceiveCopy) {
  Copies c = fm1_copies(64);
  ASSERT_EQ(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, static_cast<std::uint64_t>(kMsgs));
  // Single-packet FM 1.x messages skip staging: the handler reads the
  // packet in place, so the receive path charges zero copies.
  EXPECT_EQ(c.rx, 0u);
}

TEST(CopyCounts, Fm2OneCopyPerPacketEachSide) {
  Copies c = fm2_copies(8192);
  ASSERT_GT(c.packets_per_msg, 1u);
  EXPECT_EQ(c.tx, kMsgs * c.packets_per_msg);
  EXPECT_EQ(c.rx, kMsgs * c.packets_per_msg);
}

}  // namespace
}  // namespace fmx
