#include "workload/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fmx::workload {
namespace {

TEST(Traffic, GusellaMatchesStudy) {
  auto d = SizeDistribution::gusella_ethernet();
  // "majority of packets were less than 576 bytes"
  EXPECT_GT(d.fraction_at_most(575), 0.5);
  // "of these 60% were 50 bytes or less"
  double tiny_given_short = d.fraction_at_most(50) / d.fraction_at_most(575);
  EXPECT_NEAR(tiny_given_short, 0.60, 0.05);
}

TEST(Traffic, KayPasqualeTcpMatchesStudy) {
  auto d = SizeDistribution::kay_pasquale_tcp();
  EXPECT_GT(d.fraction_at_most(199), 0.99);  // "over 99% ... less than 200"
}

TEST(Traffic, KayPasqualeUdpMatchesStudy) {
  auto d = SizeDistribution::kay_pasquale_udp();
  EXPECT_NEAR(d.fraction_at_most(199), 0.86, 0.01);
}

TEST(Traffic, SunyBuffaloMeanInRange) {
  auto d = SizeDistribution::suny_buffalo();
  EXPECT_GE(d.mean(), 300.0);  // "average packet sizes of 300 to 400 bytes"
  EXPECT_LE(d.mean(), 400.0);
}

TEST(Traffic, SamplesRespectBucketsAndSeedDeterminism) {
  auto d = SizeDistribution::gusella_ethernet();
  auto a = generate_sizes(d, 500, 1);
  auto b = generate_sizes(d, 500, 1);
  auto c = generate_sizes(d, 500, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (auto s : a) {
    EXPECT_GE(s, 8u);
    EXPECT_LE(s, 1500u);
  }
}

TEST(Traffic, EmpiricalFractionsConvergeToAnalytic) {
  auto d = SizeDistribution::kay_pasquale_udp();
  auto sizes = generate_sizes(d, 20'000, 7);
  int small = 0;
  for (auto s : sizes) small += s <= 199;
  double emp = static_cast<double>(small) / sizes.size();
  EXPECT_NEAR(emp, d.fraction_at_most(199), 0.02);
}

TEST(Traffic, FixedAndUniform) {
  auto f = SizeDistribution::fixed(256);
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.sample(rng), 256u);
  EXPECT_DOUBLE_EQ(f.mean(), 256.0);
  auto u = SizeDistribution::uniform(10, 20);
  for (int i = 0; i < 100; ++i) {
    auto s = u.sample(rng);
    EXPECT_GE(s, 10u);
    EXPECT_LE(s, 20u);
  }
  EXPECT_DOUBLE_EQ(u.mean(), 15.0);
}

TEST(Traffic, FractionAtMostEdges) {
  auto d = SizeDistribution::fixed(100);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(99), 0.0);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(100), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(5000), 1.0);
}

TEST(Traffic, LogUniformMatchesAnalyticMean) {
  const double lo = 64, hi = 65536;
  auto d = SizeDistribution::log_uniform(64, 65536);
  // Continuous log-uniform mean: (hi - lo) / ln(hi / lo). The half-octave
  // discretization replaces each bucket's log-uniform mass with a uniform
  // one, which overestimates by ~1% per bucket at this resolution.
  const double analytic = (hi - lo) / std::log(hi / lo);
  EXPECT_NEAR(d.mean() / analytic, 1.0, 0.05);
  // Bucket weights are CDF-exact, so the octave-boundary CDF is too
  // (up to the integer-support rounding of bucket edges).
  EXPECT_NEAR(d.fraction_at_most(2048), std::log(2048.0 / lo) / std::log(hi / lo),
              0.01);
  // Equal probability per octave: [64,128) carries the same mass as
  // [8192,16384) even though the latter is 128x wider.
  const double low_octave = d.fraction_at_most(127);
  const double high_octave =
      d.fraction_at_most(16383) - d.fraction_at_most(8191);
  EXPECT_NEAR(low_octave, high_octave, 0.02);
}

TEST(Traffic, BoundedParetoMatchesAnalyticMean) {
  const double alpha = 1.2, lo = 32, hi = 1 << 20;
  auto d = SizeDistribution::bounded_pareto(alpha, 32, 1 << 20);
  // E[X] for a bounded Pareto (alpha != 1).
  const double analytic = std::pow(lo, alpha) /
                          (1.0 - std::pow(lo / hi, alpha)) *
                          (alpha / (alpha - 1.0)) *
                          (std::pow(lo, 1.0 - alpha) -
                           std::pow(hi, 1.0 - alpha));
  EXPECT_NEAR(d.mean() / analytic, 1.0, 0.10);
  // CDF at a boundary: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a).
  const double f4k = (1.0 - std::pow(lo / 4096.0, alpha)) /
                     (1.0 - std::pow(lo / hi, alpha));
  EXPECT_NEAR(d.fraction_at_most(4096), f4k, 0.01);
  // Mice and elephants: most flows are small, most bytes are not. The
  // median solves (lo/m)^a = 0.5 -> m ~= 57; the mean (~168) sits ~3x
  // above it because the rare megabyte elephants carry the bytes.
  EXPECT_GT(d.fraction_at_most(256), 0.85);
  EXPECT_GT(d.mean(), 150.0);
}

TEST(Traffic, HeavyTailSamplesStayInRangeAndReplay) {
  for (auto d : {SizeDistribution::log_uniform(100, 9999),
                 SizeDistribution::bounded_pareto(1.5, 100, 9999)}) {
    auto a = generate_sizes(d, 2000, 11);
    auto b = generate_sizes(d, 2000, 11);
    auto c = generate_sizes(d, 2000, 12);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    for (auto s : a) {
      EXPECT_GE(s, 100u);
      EXPECT_LE(s, 9999u);
    }
  }
}

TEST(Traffic, PoissonArrivalsMatchRateAndReplay) {
  const double rate = 2e6;  // 2M flows/s -> 500 ns mean gap
  PoissonArrivals a(rate, 5);
  sim::Ps prev = 0, last = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const sim::Ps t = a.next();
    EXPECT_GE(t, prev);  // non-decreasing absolute times
    prev = t;
    last = t;
  }
  // Mean gap over n draws converges to 1/rate (in ps).
  const double mean_gap = static_cast<double>(last) / n;
  EXPECT_NEAR(mean_gap / a.mean_gap_ps(), 1.0, 0.03);
  EXPECT_DOUBLE_EQ(a.mean_gap_ps(), 1e12 / rate);

  // Same seed, same schedule; different seed, different schedule.
  PoissonArrivals b(rate, 5), c(rate, 6);
  PoissonArrivals a2(rate, 5);
  bool diff = false;
  for (int i = 0; i < 100; ++i) {
    const sim::Ps tb = b.next();
    EXPECT_EQ(tb, a2.next());
    if (c.next() != tb) diff = true;
  }
  EXPECT_TRUE(diff);
}

}  // namespace
}  // namespace fmx::workload
