#include "workload/traffic.hpp"

#include <gtest/gtest.h>

namespace fmx::workload {
namespace {

TEST(Traffic, GusellaMatchesStudy) {
  auto d = SizeDistribution::gusella_ethernet();
  // "majority of packets were less than 576 bytes"
  EXPECT_GT(d.fraction_at_most(575), 0.5);
  // "of these 60% were 50 bytes or less"
  double tiny_given_short = d.fraction_at_most(50) / d.fraction_at_most(575);
  EXPECT_NEAR(tiny_given_short, 0.60, 0.05);
}

TEST(Traffic, KayPasqualeTcpMatchesStudy) {
  auto d = SizeDistribution::kay_pasquale_tcp();
  EXPECT_GT(d.fraction_at_most(199), 0.99);  // "over 99% ... less than 200"
}

TEST(Traffic, KayPasqualeUdpMatchesStudy) {
  auto d = SizeDistribution::kay_pasquale_udp();
  EXPECT_NEAR(d.fraction_at_most(199), 0.86, 0.01);
}

TEST(Traffic, SunyBuffaloMeanInRange) {
  auto d = SizeDistribution::suny_buffalo();
  EXPECT_GE(d.mean(), 300.0);  // "average packet sizes of 300 to 400 bytes"
  EXPECT_LE(d.mean(), 400.0);
}

TEST(Traffic, SamplesRespectBucketsAndSeedDeterminism) {
  auto d = SizeDistribution::gusella_ethernet();
  auto a = generate_sizes(d, 500, 1);
  auto b = generate_sizes(d, 500, 1);
  auto c = generate_sizes(d, 500, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (auto s : a) {
    EXPECT_GE(s, 8u);
    EXPECT_LE(s, 1500u);
  }
}

TEST(Traffic, EmpiricalFractionsConvergeToAnalytic) {
  auto d = SizeDistribution::kay_pasquale_udp();
  auto sizes = generate_sizes(d, 20'000, 7);
  int small = 0;
  for (auto s : sizes) small += s <= 199;
  double emp = static_cast<double>(small) / sizes.size();
  EXPECT_NEAR(emp, d.fraction_at_most(199), 0.02);
}

TEST(Traffic, FixedAndUniform) {
  auto f = SizeDistribution::fixed(256);
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.sample(rng), 256u);
  EXPECT_DOUBLE_EQ(f.mean(), 256.0);
  auto u = SizeDistribution::uniform(10, 20);
  for (int i = 0; i < 100; ++i) {
    auto s = u.sample(rng);
    EXPECT_GE(s, 10u);
    EXPECT_LE(s, 20u);
  }
  EXPECT_DOUBLE_EQ(u.mean(), 15.0);
}

TEST(Traffic, FractionAtMostEdges) {
  auto d = SizeDistribution::fixed(100);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(99), 0.0);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(100), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(5000), 1.0);
}

}  // namespace
}  // namespace fmx::workload
