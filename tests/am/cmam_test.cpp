#include "am/cmam.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analytic/protocol_model.hpp"

namespace fmx::am {
namespace {

using sim::Engine;

std::vector<Word> iota_words(std::size_t n) {
  std::vector<Word> v(n);
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

// Drive the engine and poll both endpoints until quiescent.
void run_polling(Engine& eng, CmamEndpoint& a, CmamEndpoint& b,
                 int max_rounds = 1000) {
  for (int i = 0; i < max_rounds; ++i) {
    eng.run(eng.now() + sim::us(50));
    a.poll();
    b.poll();
    if (eng.idle()) {
      a.poll();
      b.poll();
      if (eng.idle()) return;
    }
  }
}

TEST(Cmam, ReferenceCaseMatchesPaperBreakdown) {
  // 16-word message, 4-word packets, finite sequence, all guarantees:
  // Figure 2's reference numbers.
  Engine eng;
  Cm5Net net(eng, Cm5Params{});
  CmamEndpoint src(net, 0, kAll, SeqMode::kFinite);
  CmamEndpoint dst(net, 1, kAll, SeqMode::kFinite);
  auto data = iota_words(16);
  src.send_message(1, 0, data);
  run_polling(eng, src, dst);
  ASSERT_EQ(dst.messages_delivered(), 1u);

  CycleLedger total;
  total.base = src.src_cycles().base + dst.dest_cycles().base;
  total.buffer_mgmt =
      src.src_cycles().buffer_mgmt + dst.dest_cycles().buffer_mgmt;
  total.in_order = src.src_cycles().in_order + dst.dest_cycles().in_order;
  total.fault_tol =
      src.src_cycles().fault_tol + dst.dest_cycles().fault_tol;

  EXPECT_EQ(total.buffer_mgmt, 148u);
  EXPECT_EQ(total.in_order, 21u);
  EXPECT_EQ(total.fault_tol, 47u);
  EXPECT_EQ(total.total(), 397u);
}

TEST(Cmam, GuaranteeCostsAreAdditive) {
  // Each added guarantee only adds cycles in its own category.
  auto measure = [](unsigned g) {
    Engine eng;
    Cm5Net net(eng, Cm5Params{});
    CmamEndpoint src(net, 0, g, SeqMode::kFinite);
    CmamEndpoint dst(net, 1, g, SeqMode::kFinite);
    auto data = iota_words(16);
    src.send_message(1, 0, data);
    run_polling(eng, src, dst);
    CycleLedger t;
    t.base = src.src_cycles().base + dst.dest_cycles().base;
    t.buffer_mgmt =
        src.src_cycles().buffer_mgmt + dst.dest_cycles().buffer_mgmt;
    t.in_order = src.src_cycles().in_order + dst.dest_cycles().in_order;
    t.fault_tol = src.src_cycles().fault_tol + dst.dest_cycles().fault_tol;
    return t;
  };
  auto base = measure(kBase);
  auto buf = measure(kBufferMgmt);
  auto all = measure(kAll);
  EXPECT_EQ(base.buffer_mgmt, 0u);
  EXPECT_EQ(base.in_order, 0u);
  EXPECT_EQ(base.fault_tol, 0u);
  // Buffer management replaces 4 per-packet dispatches with 1 per-message
  // dispatch, so its base-category cost can only shrink.
  EXPECT_LE(buf.base, base.base);
  EXPECT_GT(buf.buffer_mgmt, 0u);
  EXPECT_GT(all.total(), buf.total());
  // The paper's point: guarantees cost 50-70% of total messaging cycles.
  double fraction = static_cast<double>(all.total() - base.total()) /
                    static_cast<double>(all.total());
  EXPECT_GT(fraction, 0.4);
  EXPECT_LT(fraction, 0.75);
}

TEST(Cmam, WithoutBufferMgmtHandlerFiresPerPacket) {
  Engine eng;
  Cm5Net net(eng, Cm5Params{});
  CmamEndpoint src(net, 0, kBase, SeqMode::kFinite);
  CmamEndpoint dst(net, 1, kBase, SeqMode::kFinite);
  int invocations = 0;
  dst.register_handler(0, [&](int, std::span<const Word> d) {
    EXPECT_EQ(d.size(), 4u);
    ++invocations;
  });
  auto data = iota_words(16);
  src.send_message(1, 0, data);
  run_polling(eng, src, dst);
  EXPECT_EQ(invocations, 4);  // raw AM: per-packet handlers
}

TEST(Cmam, BufferMgmtReassemblesDespiteReordering) {
  Cm5Params p;
  p.reorder_window_ns = 5000;  // heavy jitter: arbitrary delivery order
  p.seed = 7;
  Engine eng;
  Cm5Net net(eng, p);
  CmamEndpoint src(net, 0, kBufferMgmt, SeqMode::kFinite);
  CmamEndpoint dst(net, 1, kBufferMgmt, SeqMode::kFinite);
  std::vector<Word> got;
  dst.register_handler(0, [&](int, std::span<const Word> d) {
    got.assign(d.begin(), d.end());
  });
  auto data = iota_words(64);
  src.send_message(1, 0, data);
  run_polling(eng, src, dst);
  // Placement by packet index reassembles correctly without ordering.
  EXPECT_EQ(got, data);
}

TEST(Cmam, InOrderLayerRestoresMessageOrder) {
  Cm5Params p;
  p.reorder_window_ns = 20000;
  p.seed = 3;
  // Without the in-order layer, delivery order can differ from send order.
  auto run_case = [&](unsigned g) {
    Engine eng;
    Cm5Net net(eng, p);
    CmamEndpoint src(net, 0, g, SeqMode::kFinite);
    CmamEndpoint dst(net, 1, g, SeqMode::kFinite);
    std::vector<Word> first_words;
    dst.register_handler(0, [&](int, std::span<const Word> d) {
      first_words.push_back(d[0]);
    });
    for (Word m = 0; m < 20; ++m) {
      std::vector<Word> data(4, m);
      src.send_message(1, 0, data);
    }
    run_polling(eng, src, dst);
    return first_words;
  };
  auto unordered = run_case(kBufferMgmt);
  auto ordered = run_case(kBufferMgmt | kInOrder);
  ASSERT_EQ(ordered.size(), 20u);
  for (Word m = 0; m < 20; ++m) EXPECT_EQ(ordered[m], m);
  // The jitter actually scrambled something in the unordered run (otherwise
  // this test proves nothing).
  EXPECT_FALSE(std::is_sorted(unordered.begin(), unordered.end()));
}

TEST(Cmam, FaultToleranceRecoversFromDrops) {
  Cm5Params p;
  p.drop_rate = 0.2;
  p.seed = 11;
  Engine eng;
  Cm5Net net(eng, p);
  CmamEndpoint src(net, 0, kAll, SeqMode::kFinite);
  CmamEndpoint dst(net, 1, kAll, SeqMode::kFinite);
  std::vector<Word> got;
  dst.register_handler(0, [&](int, std::span<const Word> d) {
    got.assign(d.begin(), d.end());
  });
  auto data = iota_words(64);
  src.send_message(1, 0, data);
  for (int round = 0;
       round < 400 && (got.empty() || src.has_unacked()); ++round) {
    eng.run(eng.now() + sim::us(100));
    src.poll();
    dst.poll();
    if (src.has_unacked()) src.retransmit_unacked();
  }
  EXPECT_EQ(got, data);
  EXPECT_GT(net.stats().dropped, 0u);
  EXPECT_FALSE(src.has_unacked());
}

TEST(Cmam, WithoutFaultToleranceDropsLoseData) {
  Cm5Params p;
  p.drop_rate = 0.5;
  p.seed = 5;
  Engine eng;
  Cm5Net net(eng, p);
  CmamEndpoint src(net, 0, kBufferMgmt, SeqMode::kFinite);
  CmamEndpoint dst(net, 1, kBufferMgmt, SeqMode::kFinite);
  int complete = 0;
  dst.register_handler(0, [&](int, std::span<const Word>) { ++complete; });
  for (int m = 0; m < 20; ++m) {
    auto data = iota_words(16);
    src.send_message(1, 0, data);
  }
  run_polling(eng, src, dst);
  EXPECT_LT(complete, 20);  // some messages never completed
}

TEST(Cmam, IndefiniteSequenceCostsMoreThanFinite) {
  auto total_for = [](SeqMode mode) {
    Engine eng;
    Cm5Net net(eng, Cm5Params{});
    CmamEndpoint src(net, 0, kAll, mode);
    CmamEndpoint dst(net, 1, kAll, mode);
    auto data = iota_words(16);
    src.send_message(1, 0, data);
    run_polling(eng, src, dst);
    EXPECT_EQ(dst.messages_delivered(), 1u);
    return src.src_cycles().total() + dst.dest_cycles().total();
  };
  auto finite = total_for(SeqMode::kFinite);
  auto indefinite = total_for(SeqMode::kIndefinite);
  EXPECT_GT(indefinite, finite);
}

TEST(Cmam, IndefiniteModeDeliversCorrectData) {
  Cm5Params p;
  p.reorder_window_ns = 3000;
  p.seed = 2;
  Engine eng;
  Cm5Net net(eng, p);
  CmamEndpoint src(net, 0, kAll, SeqMode::kIndefinite);
  CmamEndpoint dst(net, 1, kAll, SeqMode::kIndefinite);
  std::vector<Word> got;
  dst.register_handler(0, [&](int, std::span<const Word> d) {
    got.assign(d.begin(), d.end());
  });
  auto data = iota_words(40);
  src.send_message(1, 0, data);
  run_polling(eng, src, dst);
  EXPECT_EQ(got, data);
}

TEST(AnalyticModel, Figure1Endpoints) {
  using namespace fmx::analytic;
  // 8-byte messages: overhead-dominated, both links nearly identical.
  double small_100 =
      delivered_bandwidth(8, k100MbitPerSec, kFig1OverheadSec);
  double small_1g = delivered_bandwidth(8, k1GbitPerSec, kFig1OverheadSec);
  EXPECT_NEAR(small_100 / 1e6, 0.064, 0.01);
  EXPECT_NEAR(small_1g / 1e6, 0.064, 0.01);
  // 1024-byte messages: still far below the link rate (the paper's point).
  double big_1g =
      delivered_bandwidth(1024, k1GbitPerSec, kFig1OverheadSec);
  EXPECT_LT(big_1g / 1e6, 12.0);
  EXPECT_GT(big_1g / 1e6, 6.0);
  // Half-power sizes: enormous (1.5 KB and 15.6 KB).
  EXPECT_NEAR(half_power_size(k100MbitPerSec, kFig1OverheadSec), 1562.5, 1);
  EXPECT_NEAR(half_power_size(k1GbitPerSec, kFig1OverheadSec), 15625, 1);
}

TEST(AnalyticModel, BandwidthMonotoneInSizeAndLink) {
  using namespace fmx::analytic;
  double prev = 0;
  for (std::size_t s = 8; s <= 1024; s *= 2) {
    double bw = delivered_bandwidth(s, k1GbitPerSec, kFig1OverheadSec);
    EXPECT_GT(bw, prev);
    EXPECT_GE(bw, delivered_bandwidth(s, k100MbitPerSec, kFig1OverheadSec));
    prev = bw;
  }
}

}  // namespace
}  // namespace fmx::am
