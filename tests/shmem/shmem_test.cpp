#include "shmem/shmem.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ga/global_array.hpp"

namespace fmx::shmem {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(int n, Config cfg = {})
      : cluster(eng, net::ppro_fm2_cluster(n)) {
    for (int i = 0; i < n; ++i) {
      pes.push_back(std::make_unique<ShmemCtx>(cluster, i, cfg));
    }
  }
  ShmemCtx& pe(int i) { return *pes[i]; }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<ShmemCtx>> pes;
};

TEST(Shmem, PutLandsInRemoteHeap) {
  World w(2);
  bool done = false;
  w.eng.spawn([](ShmemCtx& me, ShmemCtx& peer, bool& d) -> Task<void> {
    Bytes data = pattern_bytes(1, 500);
    co_await me.put(1, 100, ByteSpan{data});
    co_await me.quiet();
    d = true;
    peer.kick();  // termination nudge for the polling server
  }(w.pe(0), w.pe(1), done));
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(w.pe(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(pattern_mismatch(1, 0, ByteSpan{w.pe(1).heap()}.subspan(100, 500)),
            -1);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(Shmem, GetReadsRemoteHeap) {
  World w(2);
  // Pre-fill PE 1's heap locally.
  Bytes data = pattern_bytes(2, 800);
  std::memcpy(w.pe(1).heap().data() + 64, data.data(), data.size());
  bool done = false;
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    Bytes out(800);
    co_await me.get(1, 64, MutByteSpan{out});
    EXPECT_EQ(pattern_mismatch(2, 0, ByteSpan{out}), -1);
    d = true;
  }(w.pe(0), done));
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(w.pe(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(Shmem, QuietWaitsForAllPuts) {
  World w(2);
  bool done = false;
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    Bytes chunk(256);
    for (int i = 0; i < 10; ++i) {
      co_await me.put(1, i * 256, ByteSpan{chunk});
    }
    co_await me.quiet();  // all 10 acks must be in
    d = true;
  }(w.pe(0), done));
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(w.pe(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.pe(0).stats().puts, 10u);
}

TEST(Shmem, FetchAddIsAtomicAcrossPes) {
  World w(3);
  // PEs 0 and 1 both increment a counter on PE 2.
  std::int64_t zero = 0;
  std::memcpy(w.pe(2).heap().data(), &zero, sizeof(zero));
  int done = 0;
  std::vector<std::int64_t> observed;
  for (int p = 0; p < 2; ++p) {
    w.eng.spawn([](ShmemCtx& me, int& d, std::vector<std::int64_t>& obs)
                    -> Task<void> {
      for (int i = 0; i < 10; ++i) {
        std::int64_t old = co_await me.fetch_add(2, 0, 1);
        obs.push_back(old);
      }
      ++d;
    }(w.pe(p), done, observed));
  }
  w.eng.spawn([](ShmemCtx& me, int& d) -> Task<void> {
    co_await me.poll_until([&] { return d == 2; });
  }(w.pe(2), done));
  w.eng.run();
  ASSERT_EQ(done, 2);
  std::int64_t final_v;
  std::memcpy(&final_v, w.pe(2).heap().data(), sizeof(final_v));
  EXPECT_EQ(final_v, 20);
  // Every old value seen exactly once: atomicity.
  std::sort(observed.begin(), observed.end());
  for (std::int64_t i = 0; i < 20; ++i) EXPECT_EQ(observed[i], i);
}

TEST(Shmem, AccumulateSumsElementwise) {
  World w(2);
  std::vector<double> init(16, 1.5);
  std::memcpy(w.pe(1).heap().data(), init.data(), sizeof(double) * 16);
  bool done = false;
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    std::vector<double> add(16, 2.0);
    co_await me.accumulate(1, 0, std::span<const double>{add});
    co_await me.quiet();
    d = true;
  }(w.pe(0), done));
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(w.pe(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  const double* out = reinterpret_cast<const double*>(w.pe(1).heap().data());
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(out[i], 3.5);
}

TEST(Shmem, PutBeyondHeapThrows) {
  World w(2);
  w.eng.spawn([](ShmemCtx& me) -> Task<void> {
    Bytes b(64);
    EXPECT_THROW(
        co_await me.put(1, me.heap().size() - 10, ByteSpan{b}),
        std::out_of_range);
  }(w.pe(0)));
  w.eng.run();
}

TEST(Shmem, LocalLoopbackPutGet) {
  World w(2);
  bool done = false;
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    Bytes data = pattern_bytes(3, 128);
    co_await me.put(0, 0, ByteSpan{data});  // to self
    co_await me.quiet();
    Bytes out(128);
    co_await me.get(0, 0, MutByteSpan{out});
    EXPECT_EQ(pattern_mismatch(3, 0, ByteSpan{out}), -1);
    d = true;
  }(w.pe(0), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

// --- Global Arrays over shmem ----------------------------------------------

TEST(GlobalArrays, PutGetRoundTripAcrossOwners) {
  World w(4);
  constexpr std::size_t R = 40, C = 8;
  std::vector<std::unique_ptr<ga::GlobalArray>> gas;
  for (int p = 0; p < 4; ++p) {
    gas.push_back(std::make_unique<ga::GlobalArray>(w.pe(p), R, C));
  }
  EXPECT_EQ(gas[0]->owner_of(0), 0);
  EXPECT_EQ(gas[0]->owner_of(39), 3);
  bool done = false;
  w.eng.spawn([](ga::GlobalArray& g, bool& d) -> Task<void> {
    // Write a patch spanning three owners (rows 5..34).
    std::vector<double> patch(30 * 8);
    for (std::size_t i = 0; i < patch.size(); ++i) {
      patch[i] = static_cast<double>(i);
    }
    co_await g.put_rows(5, 30, patch);
    co_await g.flush();
    std::vector<double> back(30 * 8, -1.0);
    co_await g.get_rows(5, 30, back);
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_DOUBLE_EQ(back[i], static_cast<double>(i));
    }
    d = true;
  }(*gas[0], done));
  // Completion runs on PE 0; nudge the serving PEs so their poll loops
  // re-check `done` once traffic stops.
  w.eng.spawn([](Engine& e, World& ww, bool& d) -> Task<void> {
    while (!d) {
      co_await e.delay(sim::ms(1));
      for (int p = 1; p < 4; ++p) ww.pe(p).kick();
    }
    for (int p = 1; p < 4; ++p) ww.pe(p).kick();
  }(w.eng, w, done));
  for (int p = 1; p < 4; ++p) {
    w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
      co_await me.poll_until([&] { return d; });
    }(w.pe(p), done));
  }
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(GlobalArrays, AccumulateAddsIntoRemoteRows) {
  World w(2);
  constexpr std::size_t R = 8, C = 4;
  ga::GlobalArray g0(w.pe(0), R, C);
  ga::GlobalArray g1(w.pe(1), R, C);
  // PE 1 owns rows 4..7; zero them via its local view.
  auto local = g1.local_rows();
  std::fill(local.begin(), local.end(), 0.0);
  bool done = false;
  w.eng.spawn([](ga::GlobalArray& g, bool& d) -> Task<void> {
    std::vector<double> ones(2 * 4, 1.0);
    co_await g.acc_rows(4, 2, ones);
    co_await g.acc_rows(4, 2, ones);
    co_await g.flush();
    d = true;
  }(g0, done));
  w.eng.spawn([](ShmemCtx& me, bool& d) -> Task<void> {
    co_await me.poll_until([&] { return d; });
  }(w.pe(1), done));
  w.eng.run();
  ASSERT_TRUE(done);
  for (std::size_t i = 0; i < 2 * C; ++i) {
    EXPECT_DOUBLE_EQ(g1.local_rows()[i], 2.0);
  }
}

TEST(GlobalArrays, ConcurrentAccumulatesFromAllPes) {
  World w(4);
  constexpr std::size_t R = 16, C = 4;
  std::vector<std::unique_ptr<ga::GlobalArray>> gas;
  for (int p = 0; p < 4; ++p) {
    gas.push_back(std::make_unique<ga::GlobalArray>(w.pe(p), R, C));
    auto local = gas.back()->local_rows();
    std::fill(local.begin(), local.end(), 0.0);
  }
  int done = 0;
  for (int p = 0; p < 4; ++p) {
    w.eng.spawn([](ga::GlobalArray& g, ShmemCtx& me, int& d) -> Task<void> {
      std::vector<double> ones(R * C, 1.0);
      co_await g.acc_rows(0, R, ones);  // touches every owner
      co_await g.flush();
      ++d;
      co_await me.poll_until([&] { return d == 4; });
    }(*gas[p], w.pe(p), done));
  }
  w.eng.spawn([](Engine& e, World& ww, int& d) -> Task<void> {
    while (d < 4) co_await e.delay(sim::ms(1));
    for (int p = 0; p < 4; ++p) ww.pe(p).kick();
  }(w.eng, w, done));
  w.eng.run();
  EXPECT_EQ(done, 4);
  // All 4 PEs accumulated 1.0 into every cell: each local block reads 4.0.
  for (int p = 0; p < 4; ++p) {
    for (double v : gas[p]->local_rows()) EXPECT_DOUBLE_EQ(v, 4.0);
  }
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(GlobalArrays, PatchSizeMismatchThrows) {
  World w(2);
  ga::GlobalArray g(w.pe(0), 10, 4);
  w.eng.spawn([](ga::GlobalArray& ga_, ShmemCtx&) -> Task<void> {
    std::vector<double> wrong(7);
    EXPECT_THROW(co_await ga_.put_rows(0, 2, wrong), std::invalid_argument);
  }(g, w.pe(0)));
  w.eng.run();
}

}  // namespace
}  // namespace fmx::shmem
