// Seeded randomized stress: rings of mixed MPI traffic + one-sided shmem
// ops over shared endpoints, with and without injected bit errors, checking
// end-to-end integrity, ordering, counter conservation, and quiescence.
#include <gtest/gtest.h>

#include <memory>

#include "mpi/mpi_fm2.hpp"
#include "shmem/shmem.hpp"
#include "sim/random.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

struct Node {
  Node(net::Cluster& cluster, int id, mpi::MpiFm2Options mpi_opt)
      : ep(cluster, id), mpi(ep, mpi_opt), shm(ep) {}
  fm2::Endpoint ep;
  mpi::MpiFm2 mpi;
  shmem::ShmemCtx shm;
};

class StressTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(StressTest, MixedLayerRingWorkload) {
  auto [seed, lossy] = GetParam();
  Engine eng;
  net::ClusterParams p = net::ppro_fm2_cluster(4);
  if (lossy) {
    p.fabric.bit_error_rate = 1e-5;
    p.nic.reliable_link = true;
  }
  net::Cluster cluster(eng, p);
  mpi::MpiFm2Options mo;
  mo.eager_threshold = 4096;  // exercise both protocols
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<Node>(cluster, i, mo));
  }

  constexpr int kOps = 60;
  int finished = 0;
  for (int me = 0; me < 4; ++me) {
    eng.spawn([](Node& n, int my, int sd, int& fin) -> Task<void> {
      const int next = (my + 1) % 4;
      const int prev = (my + 3) % 4;
      // Sender and receiver derive the same op sequence from the shared
      // seed + the directed edge, so they agree without coordination.
      sim::Rng tx_rng(sd * 100 + my);
      sim::Rng rx_rng(sd * 100 + prev);
      for (int op = 0; op < kOps; ++op) {
        std::size_t tx_size = tx_rng.uniform(1, 9000);
        int tx_tag = static_cast<int>(tx_rng.uniform(0, 3));
        Bytes m = pattern_bytes(my * 10'000 + op, tx_size);
        std::size_t rx_size = rx_rng.uniform(1, 9000);
        int rx_tag = static_cast<int>(rx_rng.uniform(0, 3));
        Bytes buf(rx_size);
        mpi::Status st;
        // sendrecv posts the receive before sending — the safe SPMD idiom;
        // a ring of plain rendezvous sends would (correctly!) deadlock.
        co_await n.mpi.sendrecv(ByteSpan{m}, next, tx_tag, MutByteSpan{buf},
                                prev, rx_tag, &st);
        EXPECT_EQ(st.count, rx_size);
        EXPECT_EQ(pattern_mismatch(prev * 10'000 + op, 0, ByteSpan{buf}),
                  -1)
            << "edge " << prev << "->" << my << " op " << op;
        // Sprinkle one-sided ops: increment a counter on `next`.
        if (op % 5 == 0) {
          (void)co_await n.shm.fetch_add(next, 0, 1);
        }
      }
      co_await n.mpi.barrier();
      ++fin;
    }(*nodes[me], me, seed, finished));
  }
  eng.run();
  EXPECT_EQ(finished, 4);
  EXPECT_EQ(eng.pending_roots(), 0);
  // Each node incremented its successor 12 times (kOps/5 rounded up).
  for (int i = 0; i < 4; ++i) {
    std::int64_t v;
    std::memcpy(&v, nodes[i]->shm.heap().data(), 8);
    EXPECT_EQ(v, 12);
  }
  if (lossy) {
    EXPECT_GT(cluster.fabric().stats().corrupted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StressTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Bool()),
    [](const auto& pinfo) {
      return "seed" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) ? "_lossy" : "_clean");
    });

TEST(StressExtract, RandomBudgetsNeverLoseData) {
  // Receiver extracts with chaotic byte budgets while the sender floods:
  // receiver flow control must only delay, never corrupt or drop.
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  constexpr int kMsgs = 60;
  int seen = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(seen, 0, ByteSpan{buf}), -1);
    ++seen;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    sim::Rng rng(9);
    for (std::size_t i = 0; i < kMsgs; ++i) {
      Bytes m = pattern_bytes(i, rng.uniform(1, 12'000));
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& n) -> Task<void> {
    sim::Rng rng(10);
    while (n < kMsgs) {
      (void)co_await ep.extract(rng.uniform(16, 5'000));
      if (n >= kMsgs) break;
      co_await ep.host().compute(sim::ns(rng.uniform(100, 20'000)));
      co_await ep.wait_for_traffic();
    }
  }(rx, seen));
  eng.run();
  EXPECT_EQ(seen, kMsgs);
  EXPECT_EQ(eng.pending_roots(), 0);
}

}  // namespace
}  // namespace fmx
