// fmperf — a netperf-style command-line tool for the simulated cluster.
// Pick a layer and a measurement, get a table; the tool a user pointed at
// this library would reach for first.
//
//   fmperf [--layer fm1|fm2|mpi1|mpi2] [--mode bw|lat] [--min 16]
//          [--max 65536] [--msgs 200] [--credits N] [--mtu N]
//
// Examples:
//   ./build/examples/fmperf --layer fm2 --mode bw
//   ./build/examples/fmperf --layer mpi2 --mode lat --min 16 --max 4096
//   ./build/examples/fmperf --layer fm2 --mtu 512 --credits 4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

namespace {

struct Options {
  std::string layer = "fm2";
  std::string mode = "bw";
  std::size_t min_size = 16;
  std::size_t max_size = 65536;
  int msgs = 200;
  int credits = 0;  // 0 = default
  std::size_t mtu = 0;  // 0 = platform default
};

[[noreturn]] void usage() {
  std::puts("usage: fmperf [--layer fm1|fm2|mpi1|mpi2] [--mode bw|lat]\n"
            "              [--min BYTES] [--max BYTES] [--msgs N]\n"
            "              [--credits N] [--mtu BYTES]");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--layer")) {
      o.layer = need("--layer");
    } else if (!std::strcmp(argv[i], "--mode")) {
      o.mode = need("--mode");
    } else if (!std::strcmp(argv[i], "--min")) {
      o.min_size = std::strtoull(need("--min"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max")) {
      o.max_size = std::strtoull(need("--max"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--msgs")) {
      o.msgs = std::atoi(need("--msgs"));
    } else if (!std::strcmp(argv[i], "--credits")) {
      o.credits = std::atoi(need("--credits"));
    } else if (!std::strcmp(argv[i], "--mtu")) {
      o.mtu = std::strtoull(need("--mtu"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }
  if (o.layer != "fm1" && o.layer != "fm2" && o.layer != "mpi1" &&
      o.layer != "mpi2") {
    usage();
  }
  if (o.mode != "bw" && o.mode != "lat") usage();
  if (o.min_size == 0 || o.max_size < o.min_size || o.msgs <= 0) usage();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  bool gen1 = o.layer == "fm1" || o.layer == "mpi1";
  net::ClusterParams p =
      gen1 ? net::sparc_fm1_cluster(2) : net::ppro_fm2_cluster(2);
  if (o.mtu > 0) p.nic.mtu_payload = o.mtu;
  fm1::Config c1;
  fm2::Config c2;
  if (o.credits > 0) {
    c1.credits_per_peer = o.credits;
    c2.credits_per_peer = o.credits;
  }

  std::printf("fmperf: layer=%s mode=%s platform=%s mtu=%zu\n\n",
              o.layer.c_str(), o.mode.c_str(),
              gen1 ? "Sparc/SBus/Myrinet-1" : "PPro/PCI/Myrinet-2",
              p.nic.mtu_payload);
  std::printf("%10s  %14s\n", "msg bytes",
              o.mode == "bw" ? "MB/s" : "one-way us");
  for (std::size_t s = o.min_size; s <= o.max_size; s *= 2) {
    double v;
    if (o.mode == "bw") {
      if (o.layer == "fm1") {
        v = fm1_bandwidth(p, s, o.msgs, c1).bandwidth_mbs;
      } else if (o.layer == "fm2") {
        v = fm2_bandwidth(p, s, o.msgs, c2).bandwidth_mbs;
      } else {
        v = mpi_bandwidth(o.layer == "mpi1" ? MpiGen::kFm1 : MpiGen::kFm2,
                          p, s, o.msgs)
                .bandwidth_mbs;
      }
    } else {
      if (o.layer == "fm1") {
        v = fm1_latency_us(p, s, 40, c1);
      } else if (o.layer == "fm2") {
        v = fm2_latency_us(p, s, 40, c2);
      } else {
        v = mpi_latency_us(o.layer == "mpi1" ? MpiGen::kFm1 : MpiGen::kFm2,
                           p, s, 40);
      }
    }
    std::printf("%10zu  %14.2f\n", s, v);
  }
  return 0;
}
