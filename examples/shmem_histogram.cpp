// Shmem-FM + Global Arrays example: a distributed histogram and a
// global-array accumulate, using the one-sided APIs the paper lists among
// the layers implemented on FM 2.x (§4.2).
//
// Every PE draws samples and bins them with remote fetch-add into the
// owner PE's bin counters; then each PE accumulates a row patch into a
// global array and PE 0 checks the sums.
//
// Build & run:  ./build/examples/shmem_histogram
#include <cstdio>
#include <memory>
#include <vector>

#include "ga/global_array.hpp"
#include "shmem/shmem.hpp"
#include "sim/random.hpp"

using namespace fmx;
using shmem::ShmemCtx;
using sim::Task;

namespace {

constexpr int kPes = 4;
constexpr int kBins = 32;               // kBins/kPes bins per PE
constexpr int kSamplesPerPe = 500;
constexpr std::size_t kGaRows = 16, kGaCols = 8;
constexpr std::size_t kGaHeapOff = 64 * 1024;  // GA region in the heap

int g_done = 0;
bool g_ok = false;

Task<void> pe_program(ShmemCtx& me, ga::GlobalArray& g) {
  const int bins_per_pe = kBins / kPes;
  sim::Rng rng(1000 + me.pe());

  // Phase 1: histogram. Bin b lives on PE b / bins_per_pe at offset
  // (b % bins_per_pe) * 8 in the symmetric heap.
  for (int i = 0; i < kSamplesPerPe; ++i) {
    int bin = static_cast<int>(rng.uniform(0, kBins - 1));
    int owner = bin / bins_per_pe;
    std::size_t off = static_cast<std::size_t>(bin % bins_per_pe) * 8;
    (void)co_await me.fetch_add(owner, off, 1);
  }

  // Phase 2: every PE accumulates 1.0 into the whole global array.
  std::vector<double> ones(kGaRows * kGaCols, 1.0);
  co_await g.acc_rows(0, kGaRows, ones);
  co_await g.flush();

  ++g_done;
  // Keep serving one-sided requests until everyone is finished.
  co_await me.poll_until([] { return g_done == kPes; });
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Cluster cluster(engine, net::ppro_fm2_cluster(kPes));
  std::vector<std::unique_ptr<ShmemCtx>> pes;
  std::vector<std::unique_ptr<ga::GlobalArray>> gas;
  for (int p = 0; p < kPes; ++p) {
    pes.push_back(std::make_unique<ShmemCtx>(cluster, p));
    std::memset(pes[p]->heap().data(), 0, pes[p]->heap().size());
    gas.push_back(
        std::make_unique<ga::GlobalArray>(*pes[p], kGaRows, kGaCols,
                                          kGaHeapOff));
  }
  for (int p = 0; p < kPes; ++p) {
    engine.spawn(pe_program(*pes[p], *gas[p]));
  }
  // Termination nudge: once all PEs are done, wake any sleeping pollers.
  engine.spawn([](sim::Engine& e,
                  std::vector<std::unique_ptr<ShmemCtx>>& ps) -> Task<void> {
    while (g_done < kPes) {
      co_await e.delay(sim::ms(1));
      for (auto& pe : ps) pe->kick();
    }
    for (auto& pe : ps) pe->kick();
  }(engine, pes));
  engine.run();

  // Validate: the histogram bins must sum to the total sample count.
  std::int64_t total = 0;
  const int bins_per_pe = kBins / kPes;
  std::printf("histogram bins: ");
  for (int p = 0; p < kPes; ++p) {
    for (int b = 0; b < bins_per_pe; ++b) {
      std::int64_t v;
      std::memcpy(&v, pes[p]->heap().data() + b * 8, 8);
      total += v;
      std::printf("%lld ", static_cast<long long>(v));
    }
  }
  std::printf("\nsamples binned: %lld (expected %d)\n",
              static_cast<long long>(total), kPes * kSamplesPerPe);

  // Validate: every GA cell must equal kPes (each PE accumulated 1.0).
  bool ga_ok = true;
  for (int p = 0; p < kPes; ++p) {
    for (double v : gas[p]->local_rows()) {
      if (v != static_cast<double>(kPes)) ga_ok = false;
    }
  }
  std::printf("global array accumulate: %s\n", ga_ok ? "ok" : "WRONG");
  std::printf("simulated time: %.2f ms\n", sim::to_us(engine.now()) / 1e3);

  g_ok = (total == kPes * kSamplesPerPe) && ga_ok &&
         engine.pending_roots() == 0;
  return g_ok ? 0 : 1;
}
