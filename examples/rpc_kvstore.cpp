// An Active-Messages-style RPC service over FM 2.x: a key-value store
// served by node 0, queried by three clients. Shows the handler-as-
// logical-thread model doing real protocol work (request parsing, reply
// generation via deferred sends) — the "language runtime / user-level
// library" use case FM was designed for (§3.2).
//
// Build & run:  ./build/examples/rpc_kvstore
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "fm2/fm2.hpp"
#include "sim/random.hpp"

using namespace fmx;
using fm2::Endpoint;
using fm2::HandlerTask;
using fm2::RecvStream;
using sim::Task;

namespace {

constexpr fm2::HandlerId kRequest = 10;
constexpr fm2::HandlerId kReply = 11;

enum class Op : std::uint32_t { kPut = 1, kGet = 2 };
struct RpcHeader {
  std::uint32_t op;
  std::uint32_t key;
  std::uint32_t value_len;
  std::uint32_t request_id;
};

struct Server {
  explicit Server(Endpoint& e) : ep(e) {
    ep.register_handler(kRequest, [this](RecvStream& s, int src) {
      return serve(s, src);
    });
  }

  HandlerTask serve(RecvStream& s, int src) {
    RpcHeader h;
    co_await s.receive(&h, sizeof(h));
    if (static_cast<Op>(h.op) == Op::kPut) {
      Bytes value(h.value_len);
      co_await s.receive(MutByteSpan{value});
      store[h.key] = std::move(value);
      ++puts;
      // Ack the put (deferred: handlers receive, the endpoint sends).
      RpcHeader ack{h.op, h.key, 0, h.request_id};
      ep.defer([this, src, ack]() -> Task<void> {
        co_await ep.send(src, kReply, as_bytes_of(ack));
      });
    } else {
      ++gets;
      auto it = store.find(h.key);
      RpcHeader rep{h.op, h.key,
                    it == store.end()
                        ? 0u
                        : static_cast<std::uint32_t>(it->second.size()),
                    h.request_id};
      Bytes value = it == store.end() ? Bytes{} : it->second;
      ep.defer([this, src, rep, value]() -> Task<void> {
        const ByteSpan pieces[] = {as_bytes_of(rep), ByteSpan{value}};
        co_await ep.send_gather(src, kReply, pieces);
      });
    }
  }

  Endpoint& ep;
  std::map<std::uint32_t, Bytes> store;
  int puts = 0, gets = 0;
};

struct Client {
  explicit Client(Endpoint& e) : ep(e) {
    ep.register_handler(kReply, [this](RecvStream& s, int src) {
      return on_reply(s, src);
    });
  }

  HandlerTask on_reply(RecvStream& s, int) {
    RpcHeader h;
    co_await s.receive(&h, sizeof(h));
    last_value.resize(h.value_len);
    if (h.value_len > 0) co_await s.receive(MutByteSpan{last_value});
    got_reply = h.request_id;
  }

  Task<void> put(std::uint32_t key, ByteSpan value) {
    RpcHeader h{static_cast<std::uint32_t>(Op::kPut), key,
                static_cast<std::uint32_t>(value.size()), ++next_id};
    const ByteSpan pieces[] = {as_bytes_of(h), value};
    co_await ep.send_gather(0, kRequest, pieces);
    co_await ep.poll_until([this] { return got_reply == next_id; });
  }

  Task<Bytes> get(std::uint32_t key) {
    RpcHeader h{static_cast<std::uint32_t>(Op::kGet), key, 0, ++next_id};
    co_await ep.send(0, kRequest, as_bytes_of(h));
    co_await ep.poll_until([this] { return got_reply == next_id; });
    co_return last_value;
  }

  Endpoint& ep;
  Bytes last_value;
  std::uint32_t next_id = 0, got_reply = 0;
};

bool g_all_ok = true;
int g_done = 0;

Task<void> client_program(Client& c, int me) {
  sim::Rng rng(77 + me);
  // Each client owns a key range; write then read back and verify.
  for (int i = 0; i < 25; ++i) {
    std::uint32_t key = me * 1000 + i;
    Bytes value = pattern_bytes(key, 100 + rng.uniform(0, 900));
    co_await c.put(key, ByteSpan{value});
    Bytes back = co_await c.get(key);
    if (back != value) {
      std::printf("[client %d] MISMATCH on key %u\n", me, key);
      g_all_ok = false;
    }
  }
  // Cross-read another client's key to show shared state.
  Bytes other = co_await c.get(((me % 3) + 1) * 1000);
  if (other.empty()) {
    // May legitimately be empty if that client hasn't written yet.
  }
  ++g_done;
  std::printf("[client %d] finished 25 put/get round trips at t=%.2f ms\n",
              me, sim::to_us(c.ep.host().engine().now()) / 1e3);
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Cluster cluster(engine, net::ppro_fm2_cluster(4));
  Endpoint server_ep(cluster, 0);
  Server server(server_ep);
  std::vector<std::unique_ptr<Endpoint>> client_eps;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 1; i < 4; ++i) {
    client_eps.push_back(std::make_unique<Endpoint>(cluster, i));
    clients.push_back(std::make_unique<Client>(*client_eps.back()));
  }
  for (int i = 0; i < 3; ++i) {
    engine.spawn(client_program(*clients[i], i + 1));
  }
  // Server loop: serve until all clients are done, then stop.
  engine.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.poll_until([] { return g_done == 3; });
  }(server_ep));
  engine.spawn([](sim::Engine& e, Endpoint& srv) -> Task<void> {
    while (g_done < 3) co_await e.delay(sim::ms(1));
    srv.kick();
  }(engine, server_ep));
  engine.run();

  std::printf("\nserver handled %d puts, %d gets; store holds %zu keys\n",
              server.puts, server.gets, server.store.size());
  std::printf("all round trips verified: %s\n", g_all_ok ? "yes" : "NO");
  std::printf("simulated time: %.2f ms\n", sim::to_us(engine.now()) / 1e3);
  return g_all_ok && g_done == 3 ? 0 : 1;
}
