// Socket-FM example: a bulk file-transfer-style client/server stream over
// FM 2.x sockets, demonstrating
//   * connection setup (listen / connect / accept),
//   * streaming without message boundaries,
//   * the zero-copy receive path (posted recv buffers are filled directly
//     from the FM stream), and
//   * sender pacing through receiver flow control.
//
// Build & run:  ./build/examples/sockets_transfer
#include <cstdio>
#include <vector>

#include "sockets/socket_fm.hpp"

using namespace fmx;
using sock::Socket;
using sock::SocketFm;
using sim::Task;

namespace {

constexpr int kPort = 21;
constexpr std::size_t kFileBytes = 1 << 20;  // 1 MB "file"
constexpr std::size_t kChunk = 16 * 1024;

bool g_ok = false;

Task<void> server(SocketFm& stack) {
  stack.listen(kPort);
  Socket* conn = co_await stack.accept(kPort);
  std::printf("[server] accepted connection from node %d\n",
              conn->peer_node());

  // Simple framing: 8-byte length, then the payload stream.
  std::uint64_t len = 0;
  co_await conn->recv_exact(as_writable_bytes_of(len));
  std::printf("[server] incoming transfer of %llu bytes\n",
              static_cast<unsigned long long>(len));

  Bytes file(len);
  sim::Ps t0 = stack.fm().host().engine().now();
  std::size_t off = 0;
  while (off < len) {
    // Receive in chunks, like read(2) into a fixed buffer.
    std::size_t n = co_await conn->recv(
        MutByteSpan{file}.subspan(off, std::min(kChunk, len - off)));
    if (n == 0) break;
    off += n;
  }
  sim::Ps t1 = stack.fm().host().engine().now();

  bool intact = off == len && pattern_mismatch(7, 0, ByteSpan{file}) == -1;
  double secs = sim::to_seconds(t1 - t0);
  std::printf("[server] received %zu bytes in %.2f ms  ->  %s\n", off,
              secs * 1e3, format_mbps(off / secs).c_str());
  std::printf("[server] data intact: %s\n", intact ? "yes" : "NO");
  std::printf("[server] zero-copy bytes: %llu, buffered bytes: %llu\n",
              static_cast<unsigned long long>(stack.stats().zero_copy_bytes),
              static_cast<unsigned long long>(stack.stats().buffered_bytes));
  g_ok = intact;
}

Task<void> client(SocketFm& stack) {
  Socket* conn = co_await stack.connect(1, kPort);
  std::puts("[client] connected");

  Bytes file = pattern_bytes(7, kFileBytes);
  std::uint64_t len = file.size();
  co_await conn->send(as_bytes_of(len));
  // Stream the file in application-sized writes; Socket-FM fragments and
  // paces them through FM credits.
  for (std::size_t off = 0; off < file.size(); off += kChunk) {
    co_await conn->send(
        ByteSpan{file}.subspan(off, std::min(kChunk, file.size() - off)));
  }
  co_await conn->close();
  std::printf("[client] sent %zu bytes and closed at t=%.2f ms\n",
              file.size(), sim::to_us(stack.fm().host().engine().now()) / 1e3);
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Cluster cluster(engine, net::ppro_fm2_cluster(2));
  SocketFm client_stack(cluster, 0);
  SocketFm server_stack(cluster, 1);

  engine.spawn(server(server_stack));
  engine.spawn(client(client_stack));
  engine.run();

  std::printf("simulated time: %.2f ms\n", sim::to_us(engine.now()) / 1e3);
  return g_ok && engine.pending_roots() == 0 ? 0 : 1;
}
