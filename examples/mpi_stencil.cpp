// MPI-FM example: 1-D heat diffusion with halo exchange — the classic
// message-passing workload the paper's MPI-FM layer exists to serve.
//
// A rod of N cells is block-distributed over 4 ranks. Each iteration every
// rank exchanges one-cell halos with its neighbours (MPI sendrecv over
// MPI-FM 2.x), applies the 3-point stencil, and every 50 iterations joins
// an allreduce to track the global residual.
//
// Build & run:  ./build/examples/mpi_stencil
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using mpi::Comm;
using mpi::MpiFm2;
using sim::Task;

namespace {

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 64;
constexpr int kIters = 200;
constexpr double kAlpha = 0.25;

double g_final_residual = -1.0;

Task<void> rank_program(Comm& comm) {
  const int me = comm.rank();
  const int n = comm.size();
  // Local block with two ghost cells. Initial condition: a hot spike in
  // the middle of rank 0's block.
  std::vector<double> u(kCellsPerRank + 2, 0.0);
  std::vector<double> next(kCellsPerRank + 2, 0.0);
  if (me == 0) u[kCellsPerRank / 2] = 1000.0;

  for (int it = 0; it < kIters; ++it) {
    // Halo exchange: even/odd pairing via sendrecv avoids deadlock.
    if (me + 1 < n) {
      co_await comm.sendrecv(as_bytes_of(u[kCellsPerRank]), me + 1, 0,
                             as_writable_bytes_of(u[kCellsPerRank + 1]),
                             me + 1, 1);
    }
    if (me - 1 >= 0) {
      co_await comm.sendrecv(as_bytes_of(u[1]), me - 1, 1,
                             as_writable_bytes_of(u[0]), me - 1, 0);
    }
    // 3-point stencil (ends of the rod are fixed at 0).
    for (int i = 1; i <= kCellsPerRank; ++i) {
      bool global_edge = (me == 0 && i == 1) ||
                         (me == n - 1 && i == kCellsPerRank);
      next[i] = global_edge
                    ? u[i]
                    : u[i] + kAlpha * (u[i - 1] - 2 * u[i] + u[i + 1]);
    }
    std::swap(u, next);
    // Charge the host for the compute phase so communication/computation
    // overlap shows up in simulated time.
    co_await comm.host_compute(sim::us(5));

    if ((it + 1) % 50 == 0) {
      double local = 0;
      for (int i = 1; i <= kCellsPerRank; ++i) {
        local += std::abs(u[i] - next[i]);
      }
      std::vector<double> sum{local};
      co_await comm.allreduce_sum(std::span<double>{sum});
      if (me == 0) {
        std::printf("iter %4d  global residual %.4f\n", it + 1, sum[0]);
        g_final_residual = sum[0];
      }
    }
  }

  // Conservation check: total heat must still sum to ~1000.
  double local = 0;
  for (int i = 1; i <= kCellsPerRank; ++i) local += u[i];
  std::vector<double> total{local};
  co_await comm.allreduce_sum(std::span<double>{total});
  if (me == 0) {
    std::printf("total heat after %d iters: %.2f (expected 1000)\n", kIters,
                total[0]);
  }
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Cluster cluster(engine, net::ppro_fm2_cluster(kRanks));
  std::vector<std::unique_ptr<MpiFm2>> comms;
  for (int r = 0; r < kRanks; ++r) {
    comms.push_back(std::make_unique<MpiFm2>(cluster, r));
  }
  for (int r = 0; r < kRanks; ++r) {
    engine.spawn(rank_program(*comms[r]));
  }
  engine.run();
  std::printf("simulated time: %.2f ms, MPI messages: %llu\n",
              sim::to_us(engine.now()) / 1000.0,
              static_cast<unsigned long long>(comms[0]->stats().sends));
  return (engine.pending_roots() == 0 && g_final_residual >= 0) ? 0 : 1;
}
