// MPI-FM example: 1-D heat diffusion with halo exchange — the classic
// message-passing workload the paper's MPI-FM layer exists to serve.
//
// A rod of N cells is block-distributed over 8 ranks. Each iteration every
// rank exchanges one-cell halos with its neighbours (MPI sendrecv over
// MPI-FM 2.x) and applies the 3-point stencil. The iteration count is not
// fixed: every iteration ends with an allreduce of the global residual and
// the loop exits when it drops below tolerance — the convergence-test
// pattern that makes collective latency an every-iteration cost.
//
// The whole simulation runs twice, once with host-level collectives and
// once with MpiFm2Options::nic_collectives (the allreduce forwarded
// through the NIC control program, one host interruption per operation).
// Both runs must converge at the same iteration with bit-identical
// residuals; the difference is who does the combining, reported as the FM
// handler-start (host-interrupt) delta at the end.
//
// Build & run:  ./build/examples/mpi_stencil
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using mpi::MpiFm2;
using sim::Task;

namespace {

constexpr int kRanks = 8;
constexpr int kCellsPerRank = 64;
constexpr int kMaxIters = 400;
constexpr double kAlpha = 0.25;
constexpr double kTol = 3.0;

struct RunResult {
  double final_residual = -1.0;
  double total_heat = 0.0;
  int iters = 0;
  double sim_ms = 0.0;
  std::uint64_t handler_starts = 0;  // cluster-wide host interruptions
  std::uint64_t sends = 0;
};

Task<void> rank_program(MpiFm2& comm, RunResult& out) {
  const int me = comm.rank();
  const int n = comm.size();
  // Local block with two ghost cells. Initial condition: a hot spike in
  // the middle of rank 0's block.
  std::vector<double> u(kCellsPerRank + 2, 0.0);
  std::vector<double> next(kCellsPerRank + 2, 0.0);
  if (me == 0) u[kCellsPerRank / 2] = 1000.0;

  for (int it = 0; it < kMaxIters; ++it) {
    // Halo exchange: even/odd pairing via sendrecv avoids deadlock.
    if (me + 1 < n) {
      co_await comm.sendrecv(as_bytes_of(u[kCellsPerRank]), me + 1, 0,
                             as_writable_bytes_of(u[kCellsPerRank + 1]),
                             me + 1, 1);
    }
    if (me - 1 >= 0) {
      co_await comm.sendrecv(as_bytes_of(u[1]), me - 1, 1,
                             as_writable_bytes_of(u[0]), me - 1, 0);
    }
    // 3-point stencil (ends of the rod are fixed at 0).
    for (int i = 1; i <= kCellsPerRank; ++i) {
      bool global_edge = (me == 0 && i == 1) ||
                         (me == n - 1 && i == kCellsPerRank);
      next[i] = global_edge
                    ? u[i]
                    : u[i] + kAlpha * (u[i - 1] - 2 * u[i] + u[i + 1]);
    }
    std::swap(u, next);
    // Charge the host for the compute phase so communication/computation
    // overlap shows up in simulated time.
    co_await comm.host_compute(sim::us(5));

    // Convergence test: allreduce the per-iteration change. Every rank
    // sees the same global residual, so every rank takes the same exit.
    double local = 0;
    for (int i = 1; i <= kCellsPerRank; ++i) {
      local += std::abs(u[i] - next[i]);
    }
    std::vector<double> sum{local};
    co_await comm.allreduce_sum(std::span<double>{sum});
    if (me == 0) {
      if ((it + 1) % 50 == 0) {
        std::printf("  iter %4d  global residual %.4f\n", it + 1, sum[0]);
      }
      out.final_residual = sum[0];
      out.iters = it + 1;
    }
    if (sum[0] < kTol) break;
  }

  // Conservation check: total heat must still sum to ~1000.
  double local = 0;
  for (int i = 1; i <= kCellsPerRank; ++i) local += u[i];
  std::vector<double> total{local};
  co_await comm.allreduce_sum(std::span<double>{total});
  if (me == 0) out.total_heat = total[0];
}

RunResult run_sim(bool nic_collectives) {
  sim::Engine engine;
  net::Cluster cluster(engine, net::ppro_fm2_cluster(kRanks));
  mpi::MpiFm2Options opt;
  opt.nic_collectives = nic_collectives;
  std::vector<std::unique_ptr<MpiFm2>> comms;
  for (int r = 0; r < kRanks; ++r) {
    comms.push_back(
        std::make_unique<MpiFm2>(cluster, r, fm2::Config{}, opt));
  }
  RunResult out;
  std::printf("%s collectives:\n", nic_collectives ? "NIC" : "host");
  for (int r = 0; r < kRanks; ++r) {
    engine.spawn(rank_program(*comms[r], out));
  }
  engine.run();
  out.sim_ms = sim::to_us(engine.now()) / 1000.0;
  out.sends = comms[0]->stats().sends;
  for (const auto& c : comms) out.handler_starts += c->fm().stats().handler_starts;
  if (engine.pending_roots() != 0) out.final_residual = -1.0;
  std::printf("  converged at iter %d, residual %.4f, heat %.2f, "
              "%.2f ms simulated, %llu host interrupts\n",
              out.iters, out.final_residual, out.total_heat,
              out.sim_ms,
              static_cast<unsigned long long>(out.handler_starts));
  return out;
}

}  // namespace

int main() {
  RunResult host = run_sim(false);
  RunResult nic = run_sim(true);

  // Same physics either way: the NIC path must reproduce the host path's
  // convergence trajectory bit for bit.
  const bool same = host.iters == nic.iters &&
                    host.final_residual == nic.final_residual &&
                    host.total_heat == nic.total_heat;
  std::printf("\nNIC offload: %.2f -> %.2f ms simulated, host interrupts "
              "%llu -> %llu (%.1fx fewer), results %s\n",
              host.sim_ms, nic.sim_ms,
              static_cast<unsigned long long>(host.handler_starts),
              static_cast<unsigned long long>(nic.handler_starts),
              nic.handler_starts
                  ? double(host.handler_starts) / double(nic.handler_starts)
                  : 0.0,
              same ? "bit-identical" : "DIVERGED");
  return (same && host.final_residual >= 0 && host.final_residual < kTol)
             ? 0
             : 1;
}
