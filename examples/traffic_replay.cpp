// Workload replay: the paper's motivation (§2.1) is that real network
// traffic is dominated by SHORT messages (Gusella: most packets < 576 B,
// 60% of those <= 50 B; Kay & Pasquale: >99% of TCP packets < 200 B).
//
// This example generates a Gusella-style message-size mix and replays it
// over both FM generations' MPI layers, showing where the deliverable
// bandwidth really comes from when the workload is realistic rather than
// megabyte-sized benchmark messages.
//
// Build & run:  ./build/examples/traffic_replay
#include <cstdio>
#include <memory>
#include <vector>

#include "mpi/mpi_fm1.hpp"
#include "mpi/mpi_fm2.hpp"
#include "sim/random.hpp"
#include "workload/traffic.hpp"

using namespace fmx;
using mpi::Comm;
using sim::Task;

namespace {

// The empirical short-message mix of Gusella's Ethernet study (§2.1),
// from the reusable workload module.
std::vector<std::size_t> make_workload(int n, std::uint64_t seed) {
  return workload::generate_sizes(
      workload::SizeDistribution::gusella_ethernet(), n, seed);
}

struct ReplayResult {
  double seconds;
  std::size_t total_bytes;
  int messages;
};

template <typename MpiT>
ReplayResult replay(const net::ClusterParams& platform,
                    const std::vector<std::size_t>& sizes) {
  sim::Engine engine;
  net::Cluster cluster(engine, platform);
  MpiT tx(cluster, 0), rx(cluster, 1);

  sim::Ps t_end = 0;
  engine.spawn([](Comm& c, const std::vector<std::size_t>& sz) -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes m = pattern_bytes(i, sz[i]);
      co_await c.send(ByteSpan{m}, 1, 0);
    }
  }(tx, sizes));
  engine.spawn([](sim::Engine& e, Comm& c, const std::vector<std::size_t>& sz,
                  sim::Ps& end) -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes buf(sz[i]);
      co_await c.recv(MutByteSpan{buf}, 0, 0);
      if (pattern_mismatch(i, 0, ByteSpan{buf}) != -1) {
        throw std::runtime_error("payload corrupted in replay");
      }
    }
    end = e.now();
  }(engine, rx, sizes, t_end));
  engine.run();

  ReplayResult r;
  r.seconds = sim::to_seconds(t_end);
  r.total_bytes = 0;
  for (auto s : sizes) r.total_bytes += s;
  r.messages = static_cast<int>(sizes.size());
  return r;
}

}  // namespace

int main() {
  constexpr int kMessages = 2000;
  auto sizes = make_workload(kMessages, /*seed=*/4242);
  std::size_t total = 0, shorties = 0;
  for (auto s : sizes) {
    total += s;
    if (s <= 200) ++shorties;
  }
  std::printf("workload: %d messages, %zu bytes total, mean %.0f B, "
              "%.0f%% <= 200 B\n\n",
              kMessages, total, double(total) / kMessages,
              100.0 * shorties / kMessages);

  auto r1 = replay<mpi::MpiFm1>(net::sparc_fm1_cluster(2), sizes);
  auto r2 = replay<mpi::MpiFm2>(net::ppro_fm2_cluster(2), sizes);

  std::printf("%-28s %12s %14s %14s\n", "stack", "time (ms)", "msg/s",
              "delivered BW");
  auto row = [&](const char* name, const ReplayResult& r) {
    std::printf("%-28s %12.2f %14.0f %14s\n", name, r.seconds * 1e3,
                r.messages / r.seconds,
                format_mbps(r.total_bytes / r.seconds).c_str());
  };
  row("MPI on FM 1.x (Sparc)", r1);
  row("MPI on FM 2.x (PPro)", r2);
  std::printf("\nShort-message-dominated traffic is where interface design "
              "pays: the FM 2.x stack moves the same mix %.1fx faster.\n",
              r1.seconds / r2.seconds);
  return 0;
}
