// Quickstart: the FM 2.x API end to end on a simulated two-node Myrinet
// cluster — exactly the Table 2 primitives from the paper.
//
//   node 0:  FM_begin_message / FM_send_piece / FM_end_message
//   node 1:  a handler coroutine doing FM_receive (header, then payload),
//            driven by FM_extract
//
// Build & run:  ./build/examples/quickstart
//
// Set FMX_TRACE=/path/to/out.json to record a cross-layer trace of the run
// (Chrome tracing format — load it at chrome://tracing or ui.perfetto.dev).
#include <cstdio>
#include <cstring>

#include "fm2/fm2.hpp"
#include "trace/export.hpp"

using namespace fmx;
using fm2::Endpoint;
using fm2::HandlerTask;
using fm2::RecvStream;
using fm2::SendStream;
using sim::Task;

namespace {

// The application-level header our messages carry (the paper's §4.1
// example uses the same shape: a header that tells the handler where the
// payload belongs).
struct AppHeader {
  std::uint32_t length;
  std::uint32_t kind;
};

constexpr fm2::HandlerId kHello = 7;

Task<void> sender(Endpoint& ep) {
  std::puts("[node 0] composing a gathered message (header + payload)");
  Bytes payload = pattern_bytes(/*seed=*/42, 4000);
  AppHeader hdr{static_cast<std::uint32_t>(payload.size()), 1};

  // Table 2: FM_begin_message(dest, size, handler)
  SendStream stream =
      co_await FM_begin_message(ep, /*dest=*/1,
                                sizeof(hdr) + payload.size(), kHello);
  // Table 2: FM_send_piece — gather: two pieces, one message, no staging.
  co_await FM_send_piece(ep, stream, as_bytes_of(hdr));
  co_await FM_send_piece(ep, stream, ByteSpan{payload});
  // Table 2: FM_end_message
  co_await FM_end_message(ep, stream);
  std::printf("[node 0] message sent (%zu bytes at t=%.2f us)\n",
              sizeof(hdr) + payload.size(),
              sim::to_us(ep.host().engine().now()));
}

bool g_done = false;

// A handler is one logical thread per message: it starts as soon as the
// first packet arrives and suspends inside FM_receive until more data is
// extracted.
HandlerTask hello_handler(RecvStream& stream, int src) {
  AppHeader hdr;
  co_await stream.receive(&hdr, sizeof(hdr));
  std::printf("[node 1] header from node %d: kind=%u length=%u "
              "(message %zu bytes total, %zu already here)\n",
              src, hdr.kind, hdr.length, stream.msg_bytes(),
              stream.available());

  Bytes payload(hdr.length);
  co_await stream.receive(MutByteSpan{payload});
  bool ok = pattern_mismatch(42, 0, ByteSpan{payload}) == -1;
  std::printf("[node 1] payload received intact: %s\n", ok ? "yes" : "NO");
  g_done = true;
}

Task<void> receiver(Endpoint& ep) {
  // Table 2: FM_extract(bytes). Poll with a 2 KB budget per call to show
  // receiver flow control pacing the presentation of data.
  int extracts = 0;
  while (!g_done) {
    (void)co_await FM_extract(ep, 2048);
    ++extracts;
    co_await ep.host().compute(sim::us(1));  // pretend to do real work
  }
  std::printf("[node 1] done after %d paced FM_extract(2048) calls at "
              "t=%.2f us\n",
              extracts, sim::to_us(ep.host().engine().now()));
}

}  // namespace

int main() {
  sim::Engine engine;
  // The calibrated FM 2.x platform: 200 MHz Pentium Pro + PCI + Myrinet.
  net::Cluster cluster(engine, net::ppro_fm2_cluster(/*n_hosts=*/2));
  Endpoint node0(cluster, 0);
  Endpoint node1(cluster, 1);
  node1.register_handler(kHello, hello_handler);

  const char* trace_path = trace::env_trace_path();
  if (trace_path) cluster.fabric().tracer().enable();

  engine.spawn(sender(node0));
  engine.spawn(receiver(node1));
  engine.run();

  std::printf("simulated time: %.2f us, wire packets: %llu\n",
              sim::to_us(engine.now()),
              static_cast<unsigned long long>(cluster.fabric().stats().packets));
  if (trace_path) {
    if (trace::write_chrome_trace(cluster.fabric().tracer(), trace_path)) {
      std::printf("trace written to %s (%zu events)\n", trace_path,
                  cluster.fabric().tracer().size());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path);
      return 1;
    }
  }
  return g_done ? 0 : 1;
}
