# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/myrinet/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fm1/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/fm2/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mpi/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/am/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/analytic/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sockets/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/shmem/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/ga/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workload/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libfmx_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libfmx_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/myrinet/libfmx_myrinet.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/fm1/libfmx_fm1.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/fm2/libfmx_fm2.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mpi/libfmx_mpi.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sockets/libfmx_sockets.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/shmem/libfmx_shmem.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/ga/libfmx_ga.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/am/libfmx_am.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/analytic/libfmx_analytic.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libfmx_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/fastmessages" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

