# Empty compiler generated dependencies file for fmx_fm1.
# This may be replaced when dependencies are built.
