file(REMOVE_RECURSE
  "libfmx_fm1.a"
)
