file(REMOVE_RECURSE
  "CMakeFiles/fmx_fm1.dir/fm1.cpp.o"
  "CMakeFiles/fmx_fm1.dir/fm1.cpp.o.d"
  "libfmx_fm1.a"
  "libfmx_fm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_fm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
