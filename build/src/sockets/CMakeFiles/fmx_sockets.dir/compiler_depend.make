# Empty compiler generated dependencies file for fmx_sockets.
# This may be replaced when dependencies are built.
