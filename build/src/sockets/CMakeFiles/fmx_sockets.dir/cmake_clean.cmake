file(REMOVE_RECURSE
  "CMakeFiles/fmx_sockets.dir/overlapped.cpp.o"
  "CMakeFiles/fmx_sockets.dir/overlapped.cpp.o.d"
  "CMakeFiles/fmx_sockets.dir/socket_fm.cpp.o"
  "CMakeFiles/fmx_sockets.dir/socket_fm.cpp.o.d"
  "libfmx_sockets.a"
  "libfmx_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
