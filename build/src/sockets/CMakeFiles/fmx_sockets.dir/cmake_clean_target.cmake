file(REMOVE_RECURSE
  "libfmx_sockets.a"
)
