file(REMOVE_RECURSE
  "CMakeFiles/fmx_ga.dir/global_array.cpp.o"
  "CMakeFiles/fmx_ga.dir/global_array.cpp.o.d"
  "libfmx_ga.a"
  "libfmx_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
