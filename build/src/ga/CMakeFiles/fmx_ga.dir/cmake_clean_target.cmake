file(REMOVE_RECURSE
  "libfmx_ga.a"
)
