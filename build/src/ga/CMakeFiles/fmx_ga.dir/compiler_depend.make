# Empty compiler generated dependencies file for fmx_ga.
# This may be replaced when dependencies are built.
