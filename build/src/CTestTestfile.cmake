# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("myrinet")
subdirs("fm1")
subdirs("fm2")
subdirs("mpi")
subdirs("am")
subdirs("analytic")
subdirs("sockets")
subdirs("shmem")
subdirs("ga")
subdirs("workload")
