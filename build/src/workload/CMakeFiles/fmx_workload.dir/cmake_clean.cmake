file(REMOVE_RECURSE
  "CMakeFiles/fmx_workload.dir/traffic.cpp.o"
  "CMakeFiles/fmx_workload.dir/traffic.cpp.o.d"
  "libfmx_workload.a"
  "libfmx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
