file(REMOVE_RECURSE
  "libfmx_workload.a"
)
