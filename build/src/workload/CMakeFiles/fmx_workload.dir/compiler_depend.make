# Empty compiler generated dependencies file for fmx_workload.
# This may be replaced when dependencies are built.
