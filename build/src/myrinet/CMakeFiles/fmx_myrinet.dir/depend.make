# Empty dependencies file for fmx_myrinet.
# This may be replaced when dependencies are built.
