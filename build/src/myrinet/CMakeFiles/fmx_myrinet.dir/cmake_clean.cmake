file(REMOVE_RECURSE
  "CMakeFiles/fmx_myrinet.dir/fabric.cpp.o"
  "CMakeFiles/fmx_myrinet.dir/fabric.cpp.o.d"
  "CMakeFiles/fmx_myrinet.dir/nic.cpp.o"
  "CMakeFiles/fmx_myrinet.dir/nic.cpp.o.d"
  "CMakeFiles/fmx_myrinet.dir/presets.cpp.o"
  "CMakeFiles/fmx_myrinet.dir/presets.cpp.o.d"
  "libfmx_myrinet.a"
  "libfmx_myrinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
