file(REMOVE_RECURSE
  "libfmx_myrinet.a"
)
