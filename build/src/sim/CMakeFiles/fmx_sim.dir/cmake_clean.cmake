file(REMOVE_RECURSE
  "CMakeFiles/fmx_sim.dir/engine.cpp.o"
  "CMakeFiles/fmx_sim.dir/engine.cpp.o.d"
  "libfmx_sim.a"
  "libfmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
