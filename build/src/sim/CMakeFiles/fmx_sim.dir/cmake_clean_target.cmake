file(REMOVE_RECURSE
  "libfmx_sim.a"
)
