# Empty compiler generated dependencies file for fmx_sim.
# This may be replaced when dependencies are built.
