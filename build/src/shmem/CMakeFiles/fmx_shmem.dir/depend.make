# Empty dependencies file for fmx_shmem.
# This may be replaced when dependencies are built.
