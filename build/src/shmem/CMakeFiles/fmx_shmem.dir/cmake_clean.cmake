file(REMOVE_RECURSE
  "CMakeFiles/fmx_shmem.dir/shmem.cpp.o"
  "CMakeFiles/fmx_shmem.dir/shmem.cpp.o.d"
  "libfmx_shmem.a"
  "libfmx_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
