file(REMOVE_RECURSE
  "libfmx_shmem.a"
)
