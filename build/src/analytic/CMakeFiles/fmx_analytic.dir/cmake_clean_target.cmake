file(REMOVE_RECURSE
  "libfmx_analytic.a"
)
