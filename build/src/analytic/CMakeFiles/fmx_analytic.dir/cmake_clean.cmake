file(REMOVE_RECURSE
  "CMakeFiles/fmx_analytic.dir/protocol_model.cpp.o"
  "CMakeFiles/fmx_analytic.dir/protocol_model.cpp.o.d"
  "libfmx_analytic.a"
  "libfmx_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
