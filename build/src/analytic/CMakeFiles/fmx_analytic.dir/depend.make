# Empty dependencies file for fmx_analytic.
# This may be replaced when dependencies are built.
