file(REMOVE_RECURSE
  "libfmx_common.a"
)
