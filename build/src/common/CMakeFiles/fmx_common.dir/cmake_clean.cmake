file(REMOVE_RECURSE
  "CMakeFiles/fmx_common.dir/buffer.cpp.o"
  "CMakeFiles/fmx_common.dir/buffer.cpp.o.d"
  "CMakeFiles/fmx_common.dir/crc32.cpp.o"
  "CMakeFiles/fmx_common.dir/crc32.cpp.o.d"
  "libfmx_common.a"
  "libfmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
