# Empty dependencies file for fmx_common.
# This may be replaced when dependencies are built.
