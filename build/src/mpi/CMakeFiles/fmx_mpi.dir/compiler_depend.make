# Empty compiler generated dependencies file for fmx_mpi.
# This may be replaced when dependencies are built.
