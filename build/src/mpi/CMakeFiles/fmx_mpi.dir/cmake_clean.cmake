file(REMOVE_RECURSE
  "CMakeFiles/fmx_mpi.dir/mpi.cpp.o"
  "CMakeFiles/fmx_mpi.dir/mpi.cpp.o.d"
  "CMakeFiles/fmx_mpi.dir/mpi_fm1.cpp.o"
  "CMakeFiles/fmx_mpi.dir/mpi_fm1.cpp.o.d"
  "CMakeFiles/fmx_mpi.dir/mpi_fm2.cpp.o"
  "CMakeFiles/fmx_mpi.dir/mpi_fm2.cpp.o.d"
  "libfmx_mpi.a"
  "libfmx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
