file(REMOVE_RECURSE
  "libfmx_mpi.a"
)
