file(REMOVE_RECURSE
  "CMakeFiles/fmx_am.dir/cmam.cpp.o"
  "CMakeFiles/fmx_am.dir/cmam.cpp.o.d"
  "libfmx_am.a"
  "libfmx_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
