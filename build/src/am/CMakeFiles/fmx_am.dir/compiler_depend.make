# Empty compiler generated dependencies file for fmx_am.
# This may be replaced when dependencies are built.
