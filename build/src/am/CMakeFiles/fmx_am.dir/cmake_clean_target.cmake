file(REMOVE_RECURSE
  "libfmx_am.a"
)
