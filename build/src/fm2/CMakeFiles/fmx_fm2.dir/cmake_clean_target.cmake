file(REMOVE_RECURSE
  "libfmx_fm2.a"
)
