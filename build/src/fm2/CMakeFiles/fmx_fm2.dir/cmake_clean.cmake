file(REMOVE_RECURSE
  "CMakeFiles/fmx_fm2.dir/fm2.cpp.o"
  "CMakeFiles/fmx_fm2.dir/fm2.cpp.o.d"
  "libfmx_fm2.a"
  "libfmx_fm2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_fm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
