# Empty compiler generated dependencies file for fmx_fm2.
# This may be replaced when dependencies are built.
