# Empty compiler generated dependencies file for mpi_stencil.
# This may be replaced when dependencies are built.
