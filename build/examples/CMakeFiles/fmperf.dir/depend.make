# Empty dependencies file for fmperf.
# This may be replaced when dependencies are built.
