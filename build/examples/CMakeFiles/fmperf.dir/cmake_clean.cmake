file(REMOVE_RECURSE
  "CMakeFiles/fmperf.dir/fmperf.cpp.o"
  "CMakeFiles/fmperf.dir/fmperf.cpp.o.d"
  "fmperf"
  "fmperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
