file(REMOVE_RECURSE
  "CMakeFiles/sockets_transfer.dir/sockets_transfer.cpp.o"
  "CMakeFiles/sockets_transfer.dir/sockets_transfer.cpp.o.d"
  "sockets_transfer"
  "sockets_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sockets_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
