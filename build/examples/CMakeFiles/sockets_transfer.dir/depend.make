# Empty dependencies file for sockets_transfer.
# This may be replaced when dependencies are built.
