# Empty compiler generated dependencies file for traffic_replay.
# This may be replaced when dependencies are built.
