# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_myrinet[1]_include.cmake")
include("/root/repo/build/tests/test_fm1[1]_include.cmake")
include("/root/repo/build/tests/test_fm2[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_am[1]_include.cmake")
include("/root/repo/build/tests/test_sockets[1]_include.cmake")
include("/root/repo/build/tests/test_shmem[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
