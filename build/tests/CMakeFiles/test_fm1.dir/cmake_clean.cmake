file(REMOVE_RECURSE
  "CMakeFiles/test_fm1.dir/fm1/fm1_test.cpp.o"
  "CMakeFiles/test_fm1.dir/fm1/fm1_test.cpp.o.d"
  "test_fm1"
  "test_fm1.pdb"
  "test_fm1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
