# Empty compiler generated dependencies file for test_fm1.
# This may be replaced when dependencies are built.
