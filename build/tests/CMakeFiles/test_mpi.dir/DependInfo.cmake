
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpi/match_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/match_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/match_test.cpp.o.d"
  "/root/repo/tests/mpi/mpi_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/mpi_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/mpi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/fmx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/fm1/CMakeFiles/fmx_fm1.dir/DependInfo.cmake"
  "/root/repo/build/src/fm2/CMakeFiles/fmx_fm2.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/fmx_myrinet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
