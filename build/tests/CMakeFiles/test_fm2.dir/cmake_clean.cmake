file(REMOVE_RECURSE
  "CMakeFiles/test_fm2.dir/fm2/fm2_platform_test.cpp.o"
  "CMakeFiles/test_fm2.dir/fm2/fm2_platform_test.cpp.o.d"
  "CMakeFiles/test_fm2.dir/fm2/fm2_test.cpp.o"
  "CMakeFiles/test_fm2.dir/fm2/fm2_test.cpp.o.d"
  "CMakeFiles/test_fm2.dir/fm2/fm_modes_test.cpp.o"
  "CMakeFiles/test_fm2.dir/fm2/fm_modes_test.cpp.o.d"
  "CMakeFiles/test_fm2.dir/fm2/table_api_test.cpp.o"
  "CMakeFiles/test_fm2.dir/fm2/table_api_test.cpp.o.d"
  "test_fm2"
  "test_fm2.pdb"
  "test_fm2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
