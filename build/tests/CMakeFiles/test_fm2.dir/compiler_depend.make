# Empty compiler generated dependencies file for test_fm2.
# This may be replaced when dependencies are built.
