# Empty dependencies file for scaling_collectives.
# This may be replaced when dependencies are built.
