file(REMOVE_RECURSE
  "../bench/scaling_collectives"
  "../bench/scaling_collectives.pdb"
  "CMakeFiles/scaling_collectives.dir/scaling_collectives.cpp.o"
  "CMakeFiles/scaling_collectives.dir/scaling_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
