# Empty compiler generated dependencies file for fmx_benchlib.
# This may be replaced when dependencies are built.
