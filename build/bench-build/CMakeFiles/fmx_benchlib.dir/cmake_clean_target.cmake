file(REMOVE_RECURSE
  "libfmx_benchlib.a"
)
