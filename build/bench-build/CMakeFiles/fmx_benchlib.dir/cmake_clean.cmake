file(REMOVE_RECURSE
  "CMakeFiles/fmx_benchlib.dir/common/bench_util.cpp.o"
  "CMakeFiles/fmx_benchlib.dir/common/bench_util.cpp.o.d"
  "libfmx_benchlib.a"
  "libfmx_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmx_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
