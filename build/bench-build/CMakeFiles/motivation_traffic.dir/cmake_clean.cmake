file(REMOVE_RECURSE
  "../bench/motivation_traffic"
  "../bench/motivation_traffic.pdb"
  "CMakeFiles/motivation_traffic.dir/motivation_traffic.cpp.o"
  "CMakeFiles/motivation_traffic.dir/motivation_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
