# Empty dependencies file for motivation_traffic.
# This may be replaced when dependencies are built.
