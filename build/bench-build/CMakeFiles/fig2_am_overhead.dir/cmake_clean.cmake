file(REMOVE_RECURSE
  "../bench/fig2_am_overhead"
  "../bench/fig2_am_overhead.pdb"
  "CMakeFiles/fig2_am_overhead.dir/fig2_am_overhead.cpp.o"
  "CMakeFiles/fig2_am_overhead.dir/fig2_am_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_am_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
