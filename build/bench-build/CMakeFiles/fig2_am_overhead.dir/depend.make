# Empty dependencies file for fig2_am_overhead.
# This may be replaced when dependencies are built.
