# Empty compiler generated dependencies file for fig4_mpi_fm1.
# This may be replaced when dependencies are built.
