file(REMOVE_RECURSE
  "../bench/fig4_mpi_fm1"
  "../bench/fig4_mpi_fm1.pdb"
  "CMakeFiles/fig4_mpi_fm1.dir/fig4_mpi_fm1.cpp.o"
  "CMakeFiles/fig4_mpi_fm1.dir/fig4_mpi_fm1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mpi_fm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
