file(REMOVE_RECURSE
  "../bench/headline_table"
  "../bench/headline_table.pdb"
  "CMakeFiles/headline_table.dir/headline_table.cpp.o"
  "CMakeFiles/headline_table.dir/headline_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
