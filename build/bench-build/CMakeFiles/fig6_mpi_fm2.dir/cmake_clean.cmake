file(REMOVE_RECURSE
  "../bench/fig6_mpi_fm2"
  "../bench/fig6_mpi_fm2.pdb"
  "CMakeFiles/fig6_mpi_fm2.dir/fig6_mpi_fm2.cpp.o"
  "CMakeFiles/fig6_mpi_fm2.dir/fig6_mpi_fm2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpi_fm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
