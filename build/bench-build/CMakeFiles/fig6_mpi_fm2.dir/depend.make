# Empty dependencies file for fig6_mpi_fm2.
# This may be replaced when dependencies are built.
