file(REMOVE_RECURSE
  "../bench/ablation_protocol"
  "../bench/ablation_protocol.pdb"
  "CMakeFiles/ablation_protocol.dir/ablation_protocol.cpp.o"
  "CMakeFiles/ablation_protocol.dir/ablation_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
