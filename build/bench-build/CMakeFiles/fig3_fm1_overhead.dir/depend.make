# Empty dependencies file for fig3_fm1_overhead.
# This may be replaced when dependencies are built.
