file(REMOVE_RECURSE
  "../bench/interleaving_hol"
  "../bench/interleaving_hol.pdb"
  "CMakeFiles/interleaving_hol.dir/interleaving_hol.cpp.o"
  "CMakeFiles/interleaving_hol.dir/interleaving_hol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaving_hol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
