# Empty compiler generated dependencies file for interleaving_hol.
# This may be replaced when dependencies are built.
